//! Regenerators for the paper's Figures 3, 6–7, 9–13, 16–17 and 19.

use analog::tree::AnalogTreeConfig;
use ml::synth::Application;
use pdk::Technology;
use printed_core::flow::{SvmArch, TreeArch, TreeFlow};
use printed_core::powerfit::{assign_sets, summarize};
use printed_core::report::{DesignReport, Improvement};

/// Component-wise median of a set of improvements.
fn median_improvement(items: &[Improvement]) -> Improvement {
    fn med(mut v: Vec<f64>) -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = v.len();
        if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        }
    }
    Improvement {
        delay: med(items.iter().map(|i| i.delay).collect()),
        area: med(items.iter().map(|i| i.area).collect()),
        power: med(items.iter().map(|i| i.power).collect()),
    }
}
use printed_core::LookupConfig;

use crate::workloads::{deep_depths, depths, svm_flows, tree_flows, SEED};
use crate::{fmt3, fmt_ratio, Table};

/// Builds a per-dataset ratio figure: `arch` normalized against
/// `baseline`, one row per (dataset, depth), plus the mean row.
fn tree_ratio_figure(
    title: &str,
    depths: &[usize],
    arch: TreeArch,
    baseline: TreeArch,
    tech: Technology,
) -> Table {
    let mut t = Table::new(title, &["dataset", "depth", "delay", "area", "power"]);
    let mut improvements = Vec::new();
    for &depth in depths {
        for flow in tree_flows(depth) {
            let base = flow.report(baseline, tech);
            let this = flow.report(arch, tech);
            if this.area.is_zero() || this.power.is_zero() {
                // A tree that trains to a single class folds to a constant:
                // no hardware at all. Report it but keep it out of the mean
                // (an infinite ratio would swamp everything).
                t.row(vec![
                    flow.app.name().into(),
                    depth.to_string(),
                    "const".into(),
                    "const".into(),
                    "const".into(),
                ]);
                continue;
            }
            let imp = this.improvement_over(&base);
            improvements.push(imp);
            t.row(vec![
                flow.app.name().into(),
                depth.to_string(),
                fmt_ratio(imp.delay),
                fmt_ratio(imp.area),
                fmt_ratio(imp.power),
            ]);
        }
    }
    let mean = Improvement::mean(&improvements);
    t.row(vec![
        "AVERAGE".into(),
        "-".into(),
        fmt_ratio(mean.delay),
        fmt_ratio(mean.area),
        fmt_ratio(mean.power),
    ]);
    let median = median_improvement(&improvements);
    t.row(vec![
        "MEDIAN".into(),
        "-".into(),
        fmt_ratio(median.delay),
        fmt_ratio(median.area),
        fmt_ratio(median.power),
    ]);
    t
}

fn svm_ratio_figure(title: &str, arch: SvmArch, baseline: SvmArch, tech: Technology) -> Table {
    let mut t = Table::new(title, &["dataset", "delay", "area", "power"]);
    let mut improvements = Vec::new();
    for flow in svm_flows() {
        let base = flow.report(baseline, tech);
        let this = flow.report(arch, tech);
        let imp = this.improvement_over(&base);
        improvements.push(imp);
        t.row(vec![
            flow.app.name().into(),
            fmt_ratio(imp.delay),
            fmt_ratio(imp.area),
            fmt_ratio(imp.power),
        ]);
    }
    let mean = Improvement::mean(&improvements);
    t.row(vec![
        "AVERAGE".into(),
        fmt_ratio(mean.delay),
        fmt_ratio(mean.area),
        fmt_ratio(mean.power),
    ]);
    let median = median_improvement(&improvements);
    t.row(vec![
        "MEDIAN".into(),
        fmt_ratio(median.delay),
        fmt_ratio(median.area),
        fmt_ratio(median.power),
    ]);
    t
}

fn feasibility_table(title: &str, reports: Vec<DesignReport>) -> Table {
    let rows = assign_sets(&reports);
    let mut t = Table::new(title, &["design", "power", "powered by"]);
    for row in &rows {
        t.row(vec![
            row.design.clone(),
            format!("{} mW", fmt3(row.power_mw)),
            row.feasibility.source_name().into(),
        ]);
    }
    for (source, count) in summarize(&rows) {
        t.row(vec![
            format!("[set] {source}"),
            String::new(),
            count.to_string(),
        ]);
    }
    t
}

/// Fig. 3: which printed sources can power *conventional* EGT trees.
pub fn fig3() -> Vec<Table> {
    let mut reports = Vec::new();
    for depth in depths() {
        // Use cardio as the representative loaded model; conventional
        // engine cost is model-independent.
        let flow = TreeFlow::new(Application::Cardio, depth, SEED);
        let mut s = flow.report(TreeArch::ConventionalSerial, Technology::Egt);
        s.name = format!("SDT-{depth}");
        let mut p = flow.report(TreeArch::ConventionalParallel, Technology::Egt);
        p.name = format!("PDT-{depth}");
        reports.push(s);
        reports.push(p);
    }
    vec![feasibility_table(
        "Fig. 3: power feasibility of conventional EGT decision trees",
        reports,
    )]
}

/// Fig. 6: bespoke serial trees vs conventional serial trees (EGT).
pub fn fig6() -> Vec<Table> {
    vec![tree_ratio_figure(
        "Fig. 6: bespoke serial trees normalized against conventional serial (EGT)",
        &depths(),
        TreeArch::BespokeSerial,
        TreeArch::ConventionalSerial,
        Technology::Egt,
    )]
}

/// Fig. 7: bespoke parallel trees vs conventional parallel trees (EGT).
pub fn fig7() -> Vec<Table> {
    vec![tree_ratio_figure(
        "Fig. 7: bespoke parallel trees normalized against conventional parallel (EGT)",
        &depths(),
        TreeArch::BespokeParallel,
        TreeArch::ConventionalParallel,
        Technology::Egt,
    )]
}

/// Fig. 9: lookup-based parallel trees vs bespoke parallel trees (EGT).
pub fn fig9() -> Vec<Table> {
    // Lookup replacement targets trees with enough comparisons per
    // feature to amortize the decoder; the paper's Fig. 9 designs are the
    // deep-tree configurations.
    vec![tree_ratio_figure(
        "Fig. 9: lookup-based parallel trees normalized against bespoke parallel (EGT)",
        &deep_depths(),
        TreeArch::Lookup(LookupConfig::baseline()),
        TreeArch::BespokeParallel,
        Technology::Egt,
    )]
}

/// Fig. 10: lookup trees with constant-column elimination + dot ROMs.
pub fn fig10() -> Vec<Table> {
    vec![tree_ratio_figure(
        "Fig. 10: optimized lookup trees (const-column + dots) vs bespoke parallel (EGT)",
        &deep_depths(),
        TreeArch::Lookup(LookupConfig::optimized()),
        TreeArch::BespokeParallel,
        Technology::Egt,
    )]
}

/// Fig. 11: bespoke SVMs vs conventional SVMs (EGT).
pub fn fig11() -> Vec<Table> {
    vec![svm_ratio_figure(
        "Fig. 11: bespoke SVMs normalized against conventional SVMs (EGT)",
        SvmArch::Bespoke,
        SvmArch::Conventional,
        Technology::Egt,
    )]
}

/// Fig. 12: lookup-based SVMs vs bespoke SVMs (EGT).
pub fn fig12() -> Vec<Table> {
    vec![svm_ratio_figure(
        "Fig. 12: lookup-based SVMs normalized against bespoke SVMs (EGT)",
        SvmArch::Lookup(LookupConfig::baseline()),
        SvmArch::Bespoke,
        Technology::Egt,
    )]
}

/// Fig. 13: optimized lookup SVMs vs bespoke SVMs (EGT).
pub fn fig13() -> Vec<Table> {
    vec![svm_ratio_figure(
        "Fig. 13: optimized lookup SVMs (const-column + dots) vs bespoke SVMs (EGT)",
        SvmArch::Lookup(LookupConfig::optimized()),
        SvmArch::Bespoke,
        Technology::Egt,
    )]
}

/// Fig. 16: analog trees vs bespoke parallel digital trees (EGT).
pub fn fig16() -> Vec<Table> {
    vec![tree_ratio_figure(
        "Fig. 16: analog trees normalized against bespoke parallel digital trees (EGT)",
        &depths(),
        TreeArch::Analog(AnalogTreeConfig::default()),
        TreeArch::BespokeParallel,
        Technology::Egt,
    )]
}

/// Fig. 17: analog SVMs vs bespoke SVMs (EGT).
pub fn fig17() -> Vec<Table> {
    vec![svm_ratio_figure(
        "Fig. 17: analog SVMs normalized against bespoke SVMs (EGT)",
        SvmArch::Analog,
        SvmArch::Bespoke,
        Technology::Egt,
    )]
}

/// Fig. 19: power feasibility of the optimized (bespoke / lookup / analog)
/// classifiers across all datasets.
pub fn fig19() -> Vec<Table> {
    let mut reports = Vec::new();
    for depth in [4usize] {
        for flow in tree_flows(depth) {
            for (tag, arch) in [
                ("DTd-bespoke", TreeArch::BespokeParallel),
                ("DTd-lookup", TreeArch::Lookup(LookupConfig::optimized())),
                ("DTa", TreeArch::Analog(AnalogTreeConfig::default())),
            ] {
                let mut r = flow.report(arch, Technology::Egt);
                r.name = format!("{} {tag}-{depth}", flow.app.name());
                reports.push(r);
            }
        }
    }
    for flow in svm_flows() {
        for (tag, arch) in [
            ("SVMd-bespoke", SvmArch::Bespoke),
            ("SVMa", SvmArch::Analog),
        ] {
            let mut r = flow.report(arch, Technology::Egt);
            r.name = format!("{} {tag}", flow.app.name());
            reports.push(r);
        }
    }
    vec![feasibility_table(
        "Fig. 19: power feasibility of optimized printed classifiers (EGT)",
        reports,
    )]
}
