//! Regenerators for the paper's Tables I–V.

use ml::data::Standardizer;
use ml::forest::{ForestParams, RandomForest};
use ml::linear::{LogisticRegression, SvmClassifier, SvmRegressor};
use ml::metrics::accuracy;
use ml::mlp::{Mlp, MlpParams};
use ml::opcount::CountOps;
use ml::tree::{DecisionTree, TreeParams};
use netlist::arith::{add, multiply, relu};
use netlist::builder::NetlistBuilder;
use netlist::comb::unsigned_gt;
use netlist::{analyze, Ppa};
use pdk::{CellLibrary, Technology};
use printed_core::conventional::parallel_tree::{generate as gen_parallel, ParallelTreeSpec};
use printed_core::conventional::serial_tree::{
    generate as gen_serial, SerialTreeProgram, SerialTreeSpec,
};
use printed_core::conventional::svm::{generate as gen_svm, SvmSpec};

use crate::workloads::{apps, depths, SEED};
use crate::{fmt3, Table};

fn tech_units(t: Technology) -> (&'static str, &'static str, &'static str) {
    match t {
        Technology::Egt => ("ms", "cm2", "mW"),
        Technology::CntTft => ("us", "mm2", "mW"),
        Technology::Tsmc40 => ("ns", "um2", "mW"),
    }
}

fn scaled(t: Technology, ppa: &Ppa, cycles: usize) -> (f64, f64, f64) {
    let latency = ppa.latency(cycles);
    match t {
        Technology::Egt => (latency.as_ms(), ppa.area.as_cm2(), ppa.power.as_mw()),
        Technology::CntTft => (latency.as_us(), ppa.area.as_mm2(), ppa.power.as_mw()),
        Technology::Tsmc40 => (latency.as_ns(), ppa.area.as_um2(), ppa.power.as_mw()),
    }
}

/// Table I: PPA of an 8-bit comparator, 8-bit MAC and 8-bit ReLU in each
/// technology.
pub fn table1() -> Vec<Table> {
    let comparator = || {
        let mut b = NetlistBuilder::new("comparator");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let o = unsigned_gt(&mut b, &a, &bb);
        b.output("o", &[o]);
        b.finish()
    };
    let mac = || {
        let mut b = NetlistBuilder::new("mac");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let acc = b.input("acc", 16);
        let p = multiply(&mut b, &a, &bb);
        let s = add(&mut b, &p, &acc);
        b.output("o", &s);
        b.finish()
    };
    let relu8 = || {
        let mut b = NetlistBuilder::new("relu");
        let x = b.input("x", 8);
        let y = relu(&mut b, &x);
        b.output("y", &y);
        b.finish()
    };
    let mut t = Table::new(
        "Table I: PPA of common ML operations (measured / paper)",
        &["component", "tech", "delay", "area", "power", "paper D/A/P"],
    );
    type PaperRow = (&'static str, [(f64, f64, f64); 3]);
    let paper: [PaperRow; 3] = [
        (
            "Comparator",
            [(11.2, 0.15, 0.61), (9.5, 0.21, 8.32), (0.23, 94.0, 0.14)],
        ),
        (
            "MAC",
            [(27.0, 1.12, 4.12), (16.14, 1.4, 57.0), (0.57, 255.0, 0.51)],
        ),
        (
            "ReLU",
            [(2.54, 0.03, 0.14), (1.44, 0.35, 10.0), (0.1, 67.0, 0.46)],
        ),
    ];
    for (name, modules) in [
        ("Comparator", comparator()),
        ("MAC", mac()),
        ("ReLU", relu8()),
    ] {
        for (ti, tech) in Technology::ALL.into_iter().enumerate() {
            let lib = CellLibrary::for_technology(tech);
            let ppa = analyze(&modules, &lib);
            let (d, a, p) = scaled(tech, &ppa, 1);
            let (du, au, pu) = tech_units(tech);
            let reference = paper.iter().find(|r| r.0 == name).unwrap().1[ti];
            t.row(vec![
                name.to_string(),
                tech.to_string(),
                format!("{} {du}", fmt3(d)),
                format!("{} {au}", fmt3(a)),
                format!("{} {pu}", fmt3(p)),
                format!(
                    "{}/{}/{}",
                    fmt3(reference.0),
                    fmt3(reference.1),
                    fmt3(reference.2)
                ),
            ]);
        }
    }
    vec![t]
}

/// Table II: accuracy and op counts of every algorithm on every dataset,
/// extended with the §III projected EGT implementation cost (op counts x
/// Table I component costs) that rules the expensive algorithms out.
pub fn table2() -> Vec<Table> {
    let costs = printed_core::ComponentCosts::for_technology(Technology::Egt);
    let mut t = Table::new(
        "Table II: accuracy (A), op counts (#C, #M) and projected EGT cost",
        &["dataset", "model", "A", "#C", "#M", "EGT area", "EGT power"],
    );
    for app in apps() {
        let data = app.generate(SEED);
        let (train, test) = data.split(0.7, 42);
        let s = Standardizer::fit(&train);
        let (train, test) = (s.transform(&train), s.transform(&test));
        let acc = |pred: &mut dyn FnMut(&[f64]) -> usize| {
            accuracy(test.x.iter().map(|r| pred(r)), test.y.iter().copied())
                .expect("predictions align with test labels")
        };
        for depth in depths() {
            let m = DecisionTree::fit(&train, TreeParams::with_depth(depth));
            let ops = m.op_count();
            let a = acc(&mut |r| m.predict(r));
            let est = printed_core::estimate(&ops, &costs);
            t.row(vec![
                app.name().into(),
                format!("DT-{depth}"),
                fmt3(a),
                ops.comparisons.to_string(),
                ops.macs.to_string(),
                format!("{}", est.area),
                format!("{}", est.power),
            ]);
        }
        for n in [2usize, 4, 8] {
            let m = RandomForest::fit(&train, ForestParams::paper(n));
            let ops = m.op_count();
            let a = acc(&mut |r| m.predict(r));
            let est = printed_core::estimate(&ops, &costs);
            t.row(vec![
                app.name().into(),
                format!("RF-{n}"),
                fmt3(a),
                ops.comparisons.to_string(),
                ops.macs.to_string(),
                format!("{}", est.area),
                format!("{}", est.power),
            ]);
        }
        for (tag, params) in [("MLP-1", MlpParams::mlp1()), ("MLP-3", MlpParams::mlp3())] {
            let m = Mlp::fit(&train, &params);
            let ops = m.op_count();
            let a = acc(&mut |r| m.predict(r));
            let est = printed_core::estimate(&ops, &costs);
            t.row(vec![
                app.name().into(),
                tag.into(),
                fmt3(a),
                ops.comparisons.to_string(),
                ops.macs.to_string(),
                format!("{}", est.area),
                format!("{}", est.power),
            ]);
        }
        {
            let m = LogisticRegression::fit(&train, 150, 0.5);
            let ops = m.op_count();
            let a = acc(&mut |r| m.predict(r));
            let est = printed_core::estimate(&ops, &costs);
            t.row(vec![
                app.name().into(),
                "LR".into(),
                fmt3(a),
                ops.comparisons.to_string(),
                ops.macs.to_string(),
                format!("{}", est.area),
                format!("{}", est.power),
            ]);
        }
        {
            let m = SvmClassifier::fit(&train, 4, 1e-3, SEED);
            let ops = m.op_count();
            let a = acc(&mut |r| m.predict(r));
            let est = printed_core::estimate(&ops, &costs);
            t.row(vec![
                app.name().into(),
                "SVM-C".into(),
                fmt3(a),
                ops.comparisons.to_string(),
                ops.macs.to_string(),
                format!("{}", est.area),
                format!("{}", est.power),
            ]);
        }
        {
            let m = SvmRegressor::fit(&train, 200, 1e-4);
            let ops = m.op_count();
            let a = acc(&mut |r| m.predict(r));
            let est = printed_core::estimate(&ops, &costs);
            t.row(vec![
                app.name().into(),
                "SVM-R".into(),
                fmt3(a),
                ops.comparisons.to_string(),
                ops.macs.to_string(),
                format!("{}", est.area),
                format!("{}", est.power),
            ]);
        }
    }
    vec![t]
}

/// Table III: conventional serial trees at depths 1/2/4/8 in each
/// technology (logic vs memory split).
pub fn table3() -> Vec<Table> {
    let mut t = Table::new(
        "Table III: conventional serial trees (L = logic, M = memory)",
        &[
            "tree", "tech", "latency", "area L", "area M", "power L", "power M", "gates",
        ],
    );
    for depth in [1usize, 2, 4, 8] {
        let spec = SerialTreeSpec::conventional(depth);
        let prog = SerialTreeProgram {
            threshold_rom: vec![0; 1 << (depth + 1)],
            class_rom: vec![0; 1 << depth],
        };
        let module = gen_serial(&spec, &prog);
        for tech in Technology::ALL {
            let lib = CellLibrary::for_technology(tech);
            let ppa = analyze(&module, &lib);
            let (du, au, pu) = tech_units(tech);
            let (d, _, _) = scaled(tech, &ppa, depth);
            let area_scale = |a: pdk::Area| match tech {
                Technology::Egt => a.as_cm2(),
                Technology::CntTft => a.as_mm2(),
                Technology::Tsmc40 => a.as_um2(),
            };
            t.row(vec![
                format!("DT-{depth}"),
                tech.to_string(),
                format!("{} {du}", fmt3(d)),
                format!("{} {au}", fmt3(area_scale(ppa.logic_area))),
                format!("{} {au}", fmt3(area_scale(ppa.rom_area))),
                format!("{} {pu}", fmt3(ppa.logic_power.as_mw())),
                format!("{} {pu}", fmt3(ppa.rom_power.as_mw())),
                ppa.gate_count.to_string(),
            ]);
        }
    }
    vec![t]
}

/// Table IV: conventional maximally parallel trees.
pub fn table4() -> Vec<Table> {
    let mut t = Table::new(
        "Table IV: conventional maximally parallel trees",
        &["tree", "tech", "latency", "area", "power", "gates"],
    );
    for depth in [1usize, 2, 4, 8] {
        let module = gen_parallel(&ParallelTreeSpec::conventional(depth));
        for tech in Technology::ALL {
            let lib = CellLibrary::for_technology(tech);
            let ppa = analyze(&module, &lib);
            let (d, a, p) = scaled(tech, &ppa, 1);
            let (du, au, pu) = tech_units(tech);
            t.row(vec![
                format!("DT-{depth}"),
                tech.to_string(),
                format!("{} {du}", fmt3(d)),
                format!("{} {au}", fmt3(a)),
                format!("{} {pu}", fmt3(p)),
                ppa.gate_count.to_string(),
            ]);
        }
    }
    vec![t]
}

/// Table V: conventional SVM engines at 4/8/12/16-bit widths.
pub fn table5() -> Vec<Table> {
    let mut t = Table::new(
        "Table V: conventional SVMs (263 features)",
        &["svm", "tech", "latency", "area", "power", "gates"],
    );
    for width in [4usize, 8, 12, 16] {
        let module = gen_svm(&SvmSpec::conventional(width));
        for tech in Technology::ALL {
            let lib = CellLibrary::for_technology(tech);
            let ppa = analyze(&module, &lib);
            let (d, a, p) = scaled(tech, &ppa, 1);
            let (du, au, pu) = tech_units(tech);
            t.row(vec![
                format!("SVM-{width}"),
                tech.to_string(),
                format!("{} {du}", fmt3(d)),
                format!("{} {au}", fmt3(a)),
                format!("{} {pu}", fmt3(p)),
                ppa.gate_count.to_string(),
            ]);
        }
    }
    vec![t]
}
