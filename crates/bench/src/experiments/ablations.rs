//! Ablation studies for the design choices DESIGN.md §5 calls out.
//!
//! These go beyond the paper's figures: each table isolates one design
//! knob of the reproduction and quantifies what it buys.

use analog::comparator::ThresholdEncoding;
use analog::tree::{AnalogTree, AnalogTreeConfig};
use ml::metrics::accuracy;
use ml::quant::{FeatureQuantizer, QuantizedTree};
use ml::synth::Application;
use ml::tree::{DecisionTree, TreeParams};
use netlist::arith::{const_multiply, multiply};
use netlist::builder::NetlistBuilder;
use netlist::{analyze, optimize};
use pdk::rom::RomStyle;
use pdk::{CellLibrary, FabModel, Technology};
use printed_core::bespoke::bespoke_parallel;
use printed_core::conventional::serial_tree::{generate as gen_serial, program, SerialTreeSpec};
use printed_core::ensemble::bespoke_forest;
use printed_core::flow::{TreeArch, TreeFlow};
use printed_core::system::{ClassifierSystem, FeatureExtraction};
use printed_core::WIDTHS;

use crate::workloads::{mc_trials, row_cap, SEED};
use crate::{fmt3, Table};

fn egt() -> CellLibrary {
    CellLibrary::for_technology(Technology::Egt)
}

/// Bit-width ablation (§IV-A): accuracy vs bespoke hardware cost per
/// datapath width.
pub fn ablation_bitwidth() -> Table {
    let mut t = Table::new(
        "Ablation: datapath width vs accuracy and bespoke-tree cost (EGT)",
        &["dataset", "bits", "accuracy", "area", "power"],
    );
    let lib = egt();
    for app in [
        Application::Cardio,
        Application::Pendigits,
        Application::RedWine,
    ] {
        let data = app.generate(SEED);
        let (train, test) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(4));
        for &bits in &WIDTHS {
            let fq = FeatureQuantizer::fit(&train, bits);
            let qt = QuantizedTree::from_tree(&tree, &fq);
            let acc = accuracy(
                test.x.iter().map(|r| qt.predict(&fq.code_row(r))),
                test.y.iter().copied(),
            )
            .expect("predictions align with test labels");
            let ppa = analyze(&bespoke_parallel(&qt), &lib);
            t.row(vec![
                app.name().into(),
                bits.to_string(),
                fmt3(acc),
                format!("{}", ppa.area),
                format!("{}", ppa.power),
            ]);
        }
    }
    t
}

/// Analog buffer-insertion ablation (§VI-A): signal margin vs area.
pub fn ablation_analog_buffers() -> Table {
    let mut t = Table::new(
        "Ablation: analog tree buffers (margin restoration vs area)",
        &["dataset", "buffers", "area", "power", "worst margin (V)"],
    );
    for app in [Application::GasId, Application::Pendigits] {
        let data = app.generate(SEED);
        let (train, test) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(6));
        let fq = FeatureQuantizer::fit(&train, 6);
        let qt = QuantizedTree::from_tree(&tree, &fq);
        for buffers in [true, false] {
            let at = AnalogTree::from_tree(
                &qt,
                AnalogTreeConfig {
                    encoding: ThresholdEncoding::Calibrated,
                    buffers,
                },
            );
            let worst = test
                .x
                .iter()
                .take(50)
                .map(|row| at.worst_margin(&fq.code_row(row)))
                .fold(f64::INFINITY, f64::min);
            t.row(vec![
                app.name().into(),
                buffers.to_string(),
                format!("{}", at.area()),
                format!("{}", at.static_power()),
                fmt3(worst),
            ]);
        }
    }
    t
}

/// Threshold-encoding ablation (§VI): the paper's linear resistor map vs
/// the calibrated (transistor-law-matched) map.
pub fn ablation_threshold_encoding() -> Table {
    let mut t = Table::new(
        "Ablation: analog threshold encoding (agreement with digital tree)",
        &["dataset", "encoding", "agreement"],
    );
    for app in [Application::Har, Application::Pendigits] {
        let data = app.generate(SEED);
        let (train, test) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(4));
        let fq = FeatureQuantizer::fit(&train, 6);
        let qt = QuantizedTree::from_tree(&tree, &fq);
        for (name, encoding) in [
            ("calibrated", ThresholdEncoding::Calibrated),
            ("paper-linear", ThresholdEncoding::PaperLinear),
        ] {
            let at = AnalogTree::from_tree(
                &qt,
                AnalogTreeConfig {
                    encoding,
                    buffers: true,
                },
            );
            let agree = test
                .x
                .iter()
                .filter(|row| {
                    let codes = fq.code_row(row);
                    at.predict(&codes) == qt.predict(&codes)
                })
                .count() as f64
                / test.x.len() as f64;
            t.row(vec![app.name().into(), name.into(), fmt3(agree)]);
        }
    }
    t
}

/// Constant-coefficient multiplier encoding ablation: CSD shift-add vs a
/// full array multiplier, post-optimization.
pub fn ablation_multiplier_encoding() -> Table {
    let mut t = Table::new(
        "Ablation: constant-multiplier encoding (8-bit x constant, EGT)",
        &["constant", "style", "gates", "area"],
    );
    let lib = egt();
    for k in [3u64, 51, 102, 170, 255] {
        let csd = {
            let mut b = NetlistBuilder::new("csd");
            let x = b.input("x", 8);
            let p = const_multiply(&mut b, &x, k);
            b.output("p", &p);
            optimize(&b.finish())
        };
        let array = {
            let mut b = NetlistBuilder::new("arr");
            let x = b.input("x", 8);
            let kw = b.const_word(k, 8);
            let p = multiply(&mut b, &x, &kw);
            b.output("p", &p);
            optimize(&b.finish())
        };
        for (style, m) in [("csd", &csd), ("folded-array", &array)] {
            let ppa = analyze(m, &lib);
            t.row(vec![
                k.to_string(),
                style.into(),
                m.gate_count().to_string(),
                format!("{}", ppa.area),
            ]);
        }
    }
    t
}

/// ROM-style ablation for the serial tree engine: crossbar vs bespoke
/// dots.
pub fn ablation_rom_style() -> Table {
    let mut t = Table::new(
        "Ablation: serial-tree ROM style (EGT)",
        &["depth", "style", "memory area", "memory power"],
    );
    let lib = egt();
    for depth in [2usize, 4, 8] {
        let data = Application::Cardio.generate(SEED);
        let (train, _) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(depth));
        let fq = FeatureQuantizer::fit(&train, 8);
        let qt = QuantizedTree::from_tree(&tree, &fq);
        for (name, style) in [
            ("crossbar", RomStyle::Crossbar),
            ("bespoke-dots", RomStyle::BespokeDots),
        ] {
            let mut spec = SerialTreeSpec::conventional(depth);
            spec.rom_style = style;
            spec.n_features = qt.used_features().len().max(1);
            let prog = program(&qt, &spec);
            let ppa = analyze(&gen_serial(&spec, &prog), &lib);
            t.row(vec![
                depth.to_string(),
                name.into(),
                format!("{}", ppa.rom_area),
                format!("{}", ppa.rom_power),
            ]);
        }
    }
    t
}

/// Random-forest scaling: ensemble size vs accuracy and engine cost — the
/// paper's "RFs allow tunable accuracy-cost tradeoffs" (§III), now with
/// actual generated hardware.
pub fn ablation_forest_scaling() -> Table {
    use ml::forest::{ForestParams, RandomForest};
    use ml::quant::QuantizedForest;
    let mut t = Table::new(
        "Ablation: bespoke random-forest engines (pendigits, EGT)",
        &["trees", "accuracy", "gates", "area", "power"],
    );
    let lib = egt();
    let data = Application::Pendigits.generate(SEED);
    let (train, test) = data.split(0.7, 42);
    let fq = FeatureQuantizer::fit(&train, 8);
    for n in [1usize, 2, 4, 8] {
        let forest = RandomForest::fit(&train, ForestParams::paper(n));
        let qf = QuantizedForest::from_forest(&forest, &fq);
        let acc = accuracy(
            test.x.iter().map(|r| qf.predict(&fq.code_row(r))),
            test.y.iter().copied(),
        )
        .expect("predictions align with test labels");
        let module = bespoke_forest(&qf);
        let ppa = analyze(&module, &lib);
        t.row(vec![
            n.to_string(),
            fmt3(acc),
            module.gate_count().to_string(),
            format!("{}", ppa.area),
            format!("{}", ppa.power),
        ]);
    }
    t
}

/// Fig. 18 system-level roll-up: sensors + (ADC) + classifier, digital vs
/// analog (direct interfacing), plus the fabrication economics of §IV.
pub fn system_level() -> Table {
    let mut t = Table::new(
        "System level (Fig. 18): full-system area/power and unit economics",
        &[
            "dataset",
            "system",
            "area",
            "power",
            "powered by",
            "unit cost @1",
            "@10k",
        ],
    );
    let fab = FabModel::for_technology(Technology::Egt);
    for app in [Application::Har, Application::Cardio, Application::RedWine] {
        let flow = TreeFlow::new(app, 4, SEED);
        let sensors = flow.qt.used_features().len().max(1);
        // Printed ADCs beyond ~8 bits are not practical (the paper quotes
        // 2- and 4-bit EGT ADCs); wider datapaths would be driven by
        // multiple conversions or direct interfacing.
        let digital = ClassifierSystem::digital(
            flow.report(TreeArch::BespokeParallel, Technology::Egt),
            sensors,
            flow.choice.bits.clamp(2, 8),
            FeatureExtraction::None,
        );
        let analog = ClassifierSystem::analog(
            flow.report(
                TreeArch::Analog(analog::tree::AnalogTreeConfig::default()),
                Technology::Egt,
            ),
            sensors,
        );
        for (name, sys) in [("digital+ADC", &digital), ("analog direct", &analog)] {
            t.row(vec![
                app.name().into(),
                name.into(),
                format!("{}", sys.area()),
                format!("{}", sys.power()),
                sys.feasibility().source_name().into(),
                format!("${:.4}", fab.unit_cost_usd(sys.area(), 1)),
                format!("${:.4}", fab.unit_cost_usd(sys.area(), 10_000)),
            ]);
        }
    }
    t
}

/// All ablations bundled for the `ablations` binary.
pub fn ablations() -> Vec<Table> {
    vec![
        ablation_bitwidth(),
        ablation_analog_buffers(),
        ablation_threshold_encoding(),
        ablation_multiplier_encoding(),
        ablation_rom_style(),
        ablation_forest_scaling(),
        ablation_serial_svm(),
        ablation_fanout(),
        region_breakdown(),
        variation_analysis(),
        drift_robustness(),
        fault_coverage_analysis(),
        battery_life(),
        bent_corner(),
        system_level(),
    ]
}

/// Fanout repair: what max-fanout buffering costs a bespoke parallel tree
/// (printed gates drive weakly; the paper's synthesized netlists pay this
/// implicitly).
pub fn ablation_fanout() -> Table {
    let mut t = Table::new(
        "Ablation: max-fanout buffer insertion (bespoke parallel tree, EGT)",
        &[
            "dataset",
            "fanout limit",
            "max fanout",
            "gates",
            "area",
            "delay",
        ],
    );
    let lib = egt();
    for app in [Application::Pendigits] {
        let flow = TreeFlow::new(app, 8, SEED);
        let module = flow.module(TreeArch::BespokeParallel).expect("digital");
        let raw_fanout = netlist::max_fanout(&module);
        for limit in [usize::MAX, 8, 4, 2] {
            let repaired = if limit == usize::MAX {
                module.clone()
            } else {
                netlist::insert_buffers(&module, limit)
            };
            let ppa = analyze(&repaired, &lib);
            t.row(vec![
                app.name().into(),
                if limit == usize::MAX {
                    "none".into()
                } else {
                    limit.to_string()
                },
                if limit == usize::MAX {
                    raw_fanout.to_string()
                } else {
                    netlist::max_fanout(&repaired).to_string()
                },
                repaired.gate_count().to_string(),
                format!("{}", ppa.area),
                format!("{}", ppa.delay),
            ]);
        }
    }
    t
}

/// Per-block cost breakdown of a bespoke parallel tree — where the area
/// actually goes (comparators vs class-selection logic).
pub fn region_breakdown() -> Table {
    let mut t = Table::new(
        "Breakdown: bespoke parallel tree, logic cost by block (EGT)",
        &["dataset", "block", "gates", "area", "power"],
    );
    let lib = egt();
    for app in [Application::Cardio, Application::Pendigits] {
        let flow = TreeFlow::new(app, 8, SEED);
        let module = flow.module(TreeArch::BespokeParallel).expect("digital");
        for row in netlist::analysis::by_region(&module, &lib) {
            t.row(vec![
                app.name().into(),
                row.region.clone(),
                row.gates.to_string(),
                format!("{}", row.area),
                format!("{}", row.power),
            ]);
        }
    }
    t
}

/// Print-variation Monte Carlo for analog trees: how much resistor
/// tolerance the classifier absorbs before decisions drift (§VI's
/// mismatch discussion).
pub fn variation_analysis() -> Table {
    let mut t = Table::new(
        "Robustness: analog tree under printed-resistor variation",
        &["dataset", "sigma", "mean agreement", "worst agreement"],
    );
    for app in [Application::Har, Application::Pendigits] {
        let data = app.generate(SEED);
        let (train, test) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(4));
        let fq = FeatureQuantizer::fit(&train, 6);
        let qt = QuantizedTree::from_tree(&tree, &fq);
        let rows: Vec<Vec<u64>> = test
            .x
            .iter()
            .take(row_cap(150))
            .map(|r| fq.code_row(r))
            .collect();
        for report in
            analog::variation_sweep(&qt, &rows, &[0.02, 0.05, 0.1, 0.2], mc_trials(), SEED)
        {
            t.row(vec![
                format!("{} (tree)", app.name()),
                fmt3(report.sigma),
                fmt3(report.mean_agreement),
                fmt3(report.worst_agreement),
            ]);
        }
    }
    // Crossbar SVMs under the same print tolerances.
    {
        use ml::data::Standardizer;
        use ml::quant::QuantizedSvm;
        use ml::SvmRegressor;
        let data = Application::RedWine.generate(SEED);
        let (train, test) = data.split(0.7, 42);
        let s = Standardizer::fit(&train);
        let (train, test) = (s.transform(&train), s.transform(&test));
        let svm = SvmRegressor::fit(&train, 150, 1e-4);
        let fq = FeatureQuantizer::fit(&train, 8);
        let qs = QuantizedSvm::from_svm(&svm, &fq);
        let rows: Vec<Vec<u64>> = test
            .x
            .iter()
            .take(row_cap(150))
            .map(|r| fq.code_row(r))
            .collect();
        for report in
            analog::svm_variation_sweep(&qs, 11, &rows, &[0.02, 0.05, 0.1, 0.2], mc_trials(), SEED)
        {
            t.row(vec![
                "redwine (svm)".into(),
                fmt3(report.sigma),
                fmt3(report.mean_agreement),
                fmt3(report.worst_agreement),
            ]);
        }
    }
    t
}

/// Manufacturing-test coverage: what fraction of single-stuck-at faults
/// the application's own test data detects on a bespoke tree. A tag is
/// tested right off the printer; real sensor-like stimuli are the
/// cheapest vector set available, and this measures how good they are.
pub fn fault_coverage_analysis() -> Table {
    let mut t = Table::new(
        "Test: stuck-at fault coverage of bespoke trees (test-set vectors)",
        &["dataset", "vectors", "fault sites", "detected", "coverage"],
    );
    for app in [Application::Har, Application::Cardio] {
        let flow = TreeFlow::new(app, 4, SEED);
        let module = flow.module(TreeArch::BespokeParallel).expect("digital");
        let vectors = crate::workloads::tree_test_vectors(&flow, row_cap(150));
        let cov = netlist::fault_coverage(&module, &vectors);
        t.row(vec![
            app.name().into(),
            vectors.len().to_string(),
            cov.total.to_string(),
            cov.detected.to_string(),
            fmt3(cov.coverage()),
        ]);
    }
    t
}

/// Serial (time-multiplexed) vs parallel bespoke SVM engines — the
/// missing quadrant of the paper's serial/parallel × tree/SVM matrix.
pub fn ablation_serial_svm() -> Table {
    use ml::data::Standardizer;
    use ml::quant::QuantizedSvm;
    use ml::SvmRegressor;
    use printed_core::bespoke::bespoke_svm;
    use printed_core::extension::serial_svm;
    let mut t = Table::new(
        "Ablation: serial vs parallel bespoke SVM engines (EGT)",
        &[
            "dataset",
            "engine",
            "cycles",
            "latency",
            "logic area",
            "power",
        ],
    );
    let lib = egt();
    for app in [Application::RedWine, Application::Cardio, Application::Har] {
        let data = app.generate(SEED);
        let (train, _) = data.split(0.7, 42);
        let s = Standardizer::fit(&train);
        let train = s.transform(&train);
        let svm = SvmRegressor::fit(&train, 150, 1e-4);
        let fq = FeatureQuantizer::fit(&train, 6);
        let qs = QuantizedSvm::from_svm(&svm, &fq);
        let par = analyze(&bespoke_svm(&qs), &lib);
        t.row(vec![
            app.name().into(),
            "parallel".into(),
            "1".into(),
            format!("{}", par.latency(1)),
            format!("{}", par.logic_area),
            format!("{}", par.power),
        ]);
        let (module, info) = serial_svm(&qs);
        let ser = analyze(&module, &lib);
        t.row(vec![
            app.name().into(),
            "serial".into(),
            info.cycles.to_string(),
            format!("{}", ser.latency(info.cycles)),
            format!("{}", ser.logic_area),
            format!("{}", ser.power),
        ]);
    }
    t
}

/// Sensor-drift robustness: quantized-tree accuracy as deployed sensors
/// drift away from their training calibration (the classic GasID failure
/// mode — printed tags live for weeks on a shelf).
pub fn drift_robustness() -> Table {
    use ml::metrics::accuracy;
    let mut t = Table::new(
        "Robustness: quantized-tree accuracy under sensor drift",
        &["dataset", "drift (sigma)", "accuracy"],
    );
    for app in [Application::GasId, Application::Cardio] {
        let data = app.generate(SEED);
        let (train, test) = data.split(0.7, 42);
        let s = ml::Standardizer::fit(&train);
        let (train, test) = (s.transform(&train), s.transform(&test));
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(4));
        let fq = FeatureQuantizer::fit(&train, 8);
        let qt = QuantizedTree::from_tree(&tree, &fq);
        for drift in [0.0, 0.1, 0.25, 0.5, 1.0] {
            let drifted = test.with_drift(drift, SEED);
            let acc = accuracy(
                drifted.x.iter().map(|r| qt.predict(&fq.code_row(r))),
                drifted.y.iter().copied(),
            )
            .expect("predictions align with test labels");
            t.row(vec![app.name().into(), fmt3(drift), fmt3(acc)]);
        }
    }
    t
}

/// Battery life of the powerable designs at a per-minute duty cycle.
pub fn battery_life() -> Table {
    use printed_core::report::DutyCycle;
    let mut t = Table::new(
        "Deployment: Blue Spark 30mAh battery life at one inference per minute",
        &["dataset", "architecture", "avg power", "battery days"],
    );
    let battery = pdk::PowerSource::blue_spark_30mah();
    for app in [Application::Har, Application::Cardio, Application::RedWine] {
        let flow = TreeFlow::new(app, 4, SEED);
        for (name, arch) in [
            ("bespoke-parallel", TreeArch::BespokeParallel),
            (
                "analog",
                TreeArch::Analog(analog::tree::AnalogTreeConfig::default()),
            ),
        ] {
            let r = flow.report(arch, Technology::Egt);
            let avg = r.average_power(DutyCycle::per_minute());
            let days = r
                .battery_days(&battery, DutyCycle::per_minute())
                .map(|d| format!("{d:.0}"))
                .unwrap_or_else(|| "peak too high".into());
            t.row(vec![app.name().into(), name.into(), format!("{avg}"), days]);
        }
    }
    t
}

/// Bent-corner signoff: the §VII 10 mm-radius derate applied to a bespoke
/// design.
pub fn bent_corner() -> Table {
    let mut t = Table::new(
        "Deployment: nominal vs bent-corner (10mm radius) signoff, bespoke tree (EGT)",
        &["dataset", "corner", "latency", "power", "powered by"],
    );
    let nominal = egt();
    let bent = nominal.bent_corner();
    for app in [Application::Cardio, Application::Pendigits] {
        let flow = TreeFlow::new(app, 4, SEED);
        let module = flow.module(TreeArch::BespokeParallel).expect("digital");
        for (name, lib) in [("nominal", &nominal), ("bent", &bent)] {
            let ppa = analyze(&module, lib);
            let feas = pdk::classify(ppa.power);
            t.row(vec![
                app.name().into(),
                name.into(),
                format!("{}", ppa.latency(1)),
                format!("{}", ppa.power),
                feas.source_name().into(),
            ]);
        }
    }
    t
}
