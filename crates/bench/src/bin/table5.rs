//! Regenerates the paper's table5 (see DESIGN.md experiment index).
//! Pass `--json PATH` to also dump machine-readable results.

fn main() {
    let tables = bench::experiments::table5();
    for t in &tables {
        print!("{t}");
    }
    bench::maybe_write_json(&tables);
}
