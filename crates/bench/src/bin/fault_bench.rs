//! Wall-clock benchmark of the verification hot paths: stuck-at fault
//! grading and miter equivalence checking over the Table-VII-style
//! workload (bespoke depth-4 trees fed their own test-set vectors).
//!
//! Prints faults/sec and vectors/sec so before/after numbers for the
//! lane-parallel verification engine are one `cargo run` away:
//!
//! ```text
//! cargo run --release -p bench --bin fault_bench
//! ```

use bench::workloads::{tree_test_vectors, SEED};
use ml::synth::Application;
use printed_core::flow::{TreeArch, TreeFlow};

fn main() {
    for app in [Application::Har, Application::Cardio] {
        let flow = TreeFlow::new(app, 4, SEED);
        let module = flow.module(TreeArch::BespokeParallel).expect("digital");
        let vectors = tree_test_vectors(&flow, 150);
        let (cov, secs) = exec::time(|| netlist::fault_coverage(&module, &vectors));
        println!(
            "{}: {} faults x {} vectors in {:.3}s ({:.0} faults/sec), coverage {:.3}",
            app.name(),
            cov.total,
            vectors.len(),
            secs,
            cov.total as f64 / secs,
            cov.coverage(),
        );
    }
}
