//! Wall-clock benchmark of the verification hot paths: stuck-at fault
//! grading and miter equivalence checking over the Table-VII-style
//! workload (bespoke depth-4 trees fed their own test-set vectors).
//!
//! Prints faults/sec and vectors/sec and writes a
//! `bench/out/BENCH_fault.json` report (path overridable with `--json`)
//! so before/after numbers for the lane-parallel verification engine are
//! one `cargo run` away:
//!
//! ```text
//! cargo run --release -p bench --bin fault_bench -- [--json PATH]
//! ```
//!
//! The report carries the unified [`obs`] `report` section; see
//! `docs/observability.md`.

use serde::Serialize;

use bench::workloads::{tree_test_vectors, SEED};
use ml::synth::Application;
use printed_core::flow::{TreeArch, TreeFlow};

/// One fault-graded workload in the report.
#[derive(Serialize)]
struct WorkloadResult {
    name: String,
    faults: usize,
    vectors: usize,
    seconds: f64,
    faults_per_sec: f64,
    coverage: f64,
}

/// The `BENCH_fault.json` report.
#[derive(Serialize)]
struct Report {
    workloads: Vec<WorkloadResult>,
    /// Unified observability report (`obs-report-v1`).
    report: obs::Report,
}

fn main() {
    let mut json_path = "bench/out/BENCH_fault.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => json_path = path.clone(),
                    None => {
                        eprintln!("--json requires a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: fault_bench [--json PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    obs::reset();
    let root_span = obs::span("fault_bench");

    let mut workloads = Vec::new();
    for app in [Application::Har, Application::Cardio] {
        let flow = TreeFlow::new(app, 4, SEED);
        let module = flow.module(TreeArch::BespokeParallel).expect("digital");
        let vectors = tree_test_vectors(&flow, 150);
        let (cov, secs) = exec::time(|| netlist::fault_coverage(&module, &vectors));
        println!(
            "{}: {} faults x {} vectors in {:.3}s ({:.0} faults/sec), coverage {:.3}",
            app.name(),
            cov.total,
            vectors.len(),
            secs,
            cov.total as f64 / secs,
            cov.coverage(),
        );
        workloads.push(WorkloadResult {
            name: app.name().to_string(),
            faults: cov.total,
            vectors: vectors.len(),
            seconds: secs,
            faults_per_sec: cov.total as f64 / secs,
            coverage: cov.coverage(),
        });
    }
    drop(root_span);
    let obs_report = obs::report();
    eprint!("{}", obs_report.text_summary());

    let report = Report {
        workloads,
        report: obs_report,
    };
    let body = serde_json::to_string_pretty(&report).expect("serialize report");
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).ok();
        }
    }
    if let Err(err) = std::fs::write(&json_path, body) {
        eprintln!("error: cannot write {json_path}: {err}");
        std::process::exit(1);
    }
    eprintln!("wrote {json_path}");
}
