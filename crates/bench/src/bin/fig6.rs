//! Regenerates the paper's fig6 (see DESIGN.md experiment index).
//! Pass `--json PATH` to also dump machine-readable results.

fn main() {
    let tables = bench::experiments::fig6();
    for t in &tables {
        print!("{t}");
    }
    bench::maybe_write_json(&tables);
}
