//! Runs the ablation studies of DESIGN.md §5 plus the Fig. 18 system-level
//! roll-up. Pass `--json PATH` to dump machine-readable results.

fn main() {
    let tables = bench::experiments::ablations();
    for t in &tables {
        print!("{t}");
    }
    bench::maybe_write_json(&tables);
}
