//! Throughput benchmark of the Monte-Carlo variation engines: the
//! preserved scalar oracle (`analog::variation::reference`) against the
//! compiled lane-batched engine (`analog::compile`), on the HAR depth-4
//! analog tree (1000 trials × 100 rows) and the RedWine analog SVM
//! crossbar (1000 trials × 120 rows).
//!
//! Every engine draws the same per-trial `task_seed` streams, so before
//! any speedup is reported the run *asserts* that the compiled
//! [`analog::VariationReport`]s are bit-identical to the reference — and
//! bit-identical across 1-, 4- and 8-thread pools. Prints per-engine
//! trials/sec and writes a `bench/out/BENCH_variation.json` report (path
//! overridable with `--json`):
//!
//! ```text
//! cargo run --release -p bench --bin variation_bench -- [--smoke] [--json PATH]
//! ```
//!
//! The headline `tree_trials_per_sec` (compiled engine on the HAR
//! depth-4 tree) is what `perf_gate --variation` regresses against. The
//! report carries the unified [`obs`] `report` section; see
//! `docs/observability.md`.

use analog::compile::{CompiledSvmVariation, CompiledTreeVariation};
use analog::variation::reference;
use analog::VariationReport;
use exec::with_threads;
use ml::synth::Application;
use printed_core::flow::{SvmFlow, TreeFlow};
use serde::Serialize;

use bench::workloads::{row_cap, SEED};

/// One engine's run of a workload's trial budget.
#[derive(Serialize)]
struct EngineResult {
    /// `reference` or `compiled`, with `-1t`/`-4t`/`-8t` thread-sweep
    /// variants of the compiled engine.
    engine: String,
    trials: usize,
    rows: usize,
    seconds: f64,
    trials_per_sec: f64,
    mean_agreement: f64,
    worst_agreement: f64,
}

/// One benchmarked workload (analog tree or SVM crossbar).
#[derive(Serialize)]
struct WorkloadResult {
    name: String,
    /// Perturbed elements per trial: tree splits or crossbar rows.
    perturbed_elements: usize,
    /// One-off tape build + row bind, paid once and shared by every
    /// thread count and sigma point.
    compile_seconds: f64,
    sigma: f64,
    engines: Vec<EngineResult>,
    /// Compiled trials/sec over reference trials/sec at the default
    /// thread count.
    speedup_vs_reference: f64,
}

/// The `BENCH_variation.json` report.
#[derive(Serialize)]
struct Report {
    smoke: bool,
    workloads: Vec<WorkloadResult>,
    /// Headline number: compiled-engine throughput on the HAR depth-4
    /// tree workload (gated by `perf_gate --variation`).
    tree_trials_per_sec: f64,
    /// Headline speedup: compiled over the scalar reference on the same
    /// trial streams.
    tree_speedup: f64,
    /// Unified observability report (`obs-report-v1`).
    report: obs::Report,
}

fn finish(
    engine: String,
    trials: usize,
    rows: usize,
    seconds: f64,
    r: &VariationReport,
) -> EngineResult {
    let tps = if seconds > 0.0 {
        trials as f64 / seconds
    } else {
        0.0
    };
    println!("  {engine:<14} {trials} trials x {rows} rows in {seconds:.3}s ({tps:.0} trials/sec)");
    EngineResult {
        engine,
        trials,
        rows,
        seconds,
        trials_per_sec: tps,
        mean_agreement: r.mean_agreement,
        worst_agreement: r.worst_agreement,
    }
}

/// Runs reference + compiled (thread sweep) over one workload, asserting
/// report bit-identity before any speedup is reported. `analyze` must
/// evaluate the compiled engine on pre-bound rows; `oracle` is the
/// preserved scalar path on the same trial streams.
#[allow(clippy::too_many_arguments)]
fn run_workload(
    name: &str,
    perturbed_elements: usize,
    compile_seconds: f64,
    rows: usize,
    sigma: f64,
    trials: usize,
    oracle: impl Fn() -> VariationReport,
    analyze: impl Fn() -> VariationReport,
) -> WorkloadResult {
    println!("{name}: {perturbed_elements} perturbed elements/trial, {trials} trials, {rows} rows (sigma {sigma})");
    println!("  tape compiled + rows bound in {compile_seconds:.3}s");
    let (ref_report, ref_seconds) = exec::time(&oracle);
    let mut engines = vec![finish(
        "reference".into(),
        trials,
        rows,
        ref_seconds,
        &ref_report,
    )];
    let (compiled_report, compiled_seconds) = exec::time(&analyze);
    assert_eq!(
        compiled_report, ref_report,
        "{name}: compiled report diverges from the scalar reference"
    );
    engines.push(finish(
        "compiled".into(),
        trials,
        rows,
        compiled_seconds,
        &compiled_report,
    ));
    for threads in [1usize, 4, 8] {
        let (r, seconds) = with_threads(threads, || exec::time(&analyze));
        assert_eq!(
            r, ref_report,
            "{name}: compiled report diverges at {threads} threads"
        );
        engines.push(finish(
            format!("compiled-{threads}t"),
            trials,
            rows,
            seconds,
            &r,
        ));
    }
    let speedup = if engines[0].trials_per_sec > 0.0 {
        engines[1].trials_per_sec / engines[0].trials_per_sec
    } else {
        0.0
    };
    println!("  speedup (compiled vs reference): {speedup:.2}x");
    WorkloadResult {
        name: name.to_string(),
        perturbed_elements,
        compile_seconds,
        sigma,
        engines,
        speedup_vs_reference: speedup,
    }
}

fn main() {
    let mut smoke = false;
    let mut json_path = "bench/out/BENCH_variation.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => json_path = path.clone(),
                    None => {
                        eprintln!("--json requires a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: variation_bench [--smoke] [--json PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    bench::workloads::set_smoke(smoke);
    obs::reset();
    let root_span = obs::span("variation_bench");

    // Smoke trims the trial budget, not the models: the headline is a
    // perf-gate input and the full 1000-trial budget is the acceptance
    // workload, but 200 trials (4 lane blocks — still past the 64-trial
    // block boundary) time stably within the gate's margin.
    let trials = if smoke { 200 } else { 1000 };
    let sigma = 0.1;
    let mut workloads = Vec::new();

    {
        let flow = TreeFlow::new(Application::Har, 4, SEED);
        let rows: Vec<Vec<u64>> = flow
            .test
            .x
            .iter()
            .take(row_cap(100))
            .map(|r| flow.fq.code_row(r))
            .collect();
        let ((engine, bound), compile_seconds) = exec::time(|| {
            let engine = CompiledTreeVariation::compile(&flow.qt);
            let bound = engine.bind(&rows);
            (engine, bound)
        });
        workloads.push(run_workload(
            "har-dt4-tree",
            engine.split_count(),
            compile_seconds,
            rows.len(),
            sigma,
            trials,
            || reference::analyze_tree_variation(&flow.qt, &rows, sigma, trials, SEED),
            || engine.analyze(&bound, sigma, trials, SEED),
        ));
    }
    {
        let flow = SvmFlow::new(Application::RedWine, SEED);
        let rows: Vec<Vec<u64>> = flow
            .test
            .x
            .iter()
            .take(row_cap(120))
            .map(|r| flow.fq.code_row(r))
            .collect();
        let n_features = flow.n_features;
        let ((engine, bound), compile_seconds) = exec::time(|| {
            let engine = CompiledSvmVariation::compile(&flow.qs, n_features);
            let bound = engine.bind(&rows);
            (engine, bound)
        });
        workloads.push(run_workload(
            "redwine-svm-crossbar",
            engine.term_count(),
            compile_seconds,
            rows.len(),
            sigma,
            trials,
            || reference::analyze_svm_variation(&flow.qs, n_features, &rows, sigma, trials, SEED),
            || engine.analyze(&bound, sigma, trials, SEED),
        ));
    }

    drop(root_span);
    let obs_report = obs::report();
    eprint!("{}", obs_report.text_summary());

    let tree_result = &workloads[0];
    let tree_trials_per_sec = tree_result.engines[1].trials_per_sec;
    let tree_speedup = tree_result.speedup_vs_reference;
    let report = Report {
        smoke,
        tree_trials_per_sec,
        tree_speedup,
        workloads,
        report: obs_report,
    };
    println!(
        "headline: HAR depth-4 tree at {:.0} trials/sec on the compiled lane-batched engine ({:.2}x the scalar reference)",
        report.tree_trials_per_sec, report.tree_speedup
    );
    let body = serde_json::to_string_pretty(&report).expect("serialize report");
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).ok();
        }
    }
    if let Err(err) = std::fs::write(&json_path, body) {
        eprintln!("error: cannot write {json_path}: {err}");
        std::process::exit(1);
    }
    eprintln!("wrote {json_path}");
}
