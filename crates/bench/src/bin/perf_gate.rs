//! CI perf-regression gate over the smoke-mode benchmark reports.
//!
//! Reads the `repro_all --smoke --verify --no-cache --json`, `opt_bench
//! --smoke --json`, `sim_bench --smoke --json`, `variation_bench --smoke
//! --json` and `cache_bench --smoke --json` reports, validates their
//! unified [`obs`] `report` sections against the `obs-report-v1` schema,
//! extracts the headline throughput metrics and compares them against
//! the committed baseline (`bench/BENCH_baseline.json`). The process
//! exits nonzero if any metric regresses by more than `--max-regress`
//! (default 25%).
//!
//! The repro run feeding the gate must be `--no-cache`: its metrics are
//! computed from pipeline counters (`netlist.opt.*` etc.) that only
//! fire on real computation, not on artifact-cache hits.
//!
//! ```text
//! cargo run --release -p bench --bin perf_gate -- \
//!     [--repro PATH] [--opt PATH] [--sim PATH] [--variation PATH] \
//!     [--cache PATH] [--baseline PATH] [--max-regress 0.25] [--refresh]
//! ```
//!
//! Refresh the baseline (after an intentional perf change) with:
//!
//! ```text
//! cargo run --release -p bench --bin repro_all -- --smoke --threads 2 --verify --no-cache --json bench/out/smoke.json && cargo run --release -p bench --bin opt_bench -- --smoke --json bench/out/BENCH_opt_smoke.json && cargo run --release -p bench --bin sim_bench -- --smoke --json bench/out/BENCH_sim_smoke.json && cargo run --release -p bench --bin variation_bench -- --smoke --json bench/out/BENCH_variation_smoke.json && cargo run --release -p bench --bin cache_bench -- --smoke --threads 2 --json bench/out/BENCH_cache_smoke.json && cargo run --release -p bench --bin perf_gate -- --refresh
//! ```

use serde::{Deserialize, Serialize};
use serde_json::Value;

/// Schema tag of the committed baseline file (v2 added the compiled
/// simulation-kernel metric, v3 the compiled variation-engine metric,
/// v4 the artifact-cache warm-replay metric).
const BASELINE_SCHEMA: &str = "perf-baseline-v4";

/// The committed throughput baseline. All metrics are
/// higher-is-better rates measured by the smoke workloads.
#[derive(Debug, Serialize, Deserialize)]
struct Baseline {
    schema: String,
    /// Worklist-optimizer throughput over the whole repro run
    /// (`netlist.opt.gates_in / netlist.opt.ns`).
    repro_opt_gates_per_sec: f64,
    /// Equivalence-check throughput of the sign-off stage.
    repro_verify_vectors_per_sec: f64,
    /// Fault-grading throughput of the sign-off stage.
    repro_verify_faults_per_sec: f64,
    /// Optimizer throughput on the conventional SVM-16 netlist.
    opt_svm16_gates_per_sec: f64,
    /// Compiled 256-lane simulation throughput on the conventional
    /// SVM-16 netlist (`sim_bench` headline).
    sim_svm16_vectors_per_sec: f64,
    /// Compiled lane-batched Monte-Carlo variation throughput on the
    /// HAR depth-4 analog tree (`variation_bench` headline).
    variation_trials_per_sec: f64,
    /// Artifact-cache warm replay over cold compute, full experiment
    /// suite (`cache_bench` headline; a dimensionless speedup, but
    /// higher-is-better like every other metric here).
    cache_warm_speedup: f64,
}

fn fail(msg: &str) -> ! {
    eprintln!("[perf_gate] error: {msg}");
    std::process::exit(1);
}

fn load(path: &str) -> Value {
    let body = std::fs::read_to_string(path)
        .unwrap_or_else(|err| fail(&format!("cannot read {path}: {err}")));
    serde_json::from_str(&body).unwrap_or_else(|err| fail(&format!("cannot parse {path}: {err}")))
}

/// Validates a bin report's `report` section: deserializes it into
/// [`obs::Report`] (shape check) and asserts the schema tag and the
/// presence of the counters the gate metrics are computed from.
fn validate_obs_section(path: &str, root: &Value, required_counters: &[&str]) -> obs::Report {
    let section = root
        .get("report")
        .unwrap_or_else(|| fail(&format!("{path}: missing `report` section")));
    let report: obs::Report = serde_json::from_value(section)
        .unwrap_or_else(|err| fail(&format!("{path}: bad `report` section: {err}")));
    if report.schema != obs::SCHEMA {
        fail(&format!(
            "{path}: report schema {:?}, expected {:?}",
            report.schema,
            obs::SCHEMA
        ));
    }
    if report.spans.is_empty() {
        fail(&format!("{path}: report has no spans"));
    }
    for c in required_counters {
        if report.counter(c) == 0 {
            fail(&format!("{path}: counter {c} missing or zero"));
        }
    }
    report
}

fn num(path: &str, root: &Value, keys: &[&str]) -> f64 {
    let mut v = root;
    for k in keys {
        v = v
            .get(k)
            .unwrap_or_else(|| fail(&format!("{path}: missing field {}", keys.join("."))));
    }
    v.as_f64()
        .unwrap_or_else(|| fail(&format!("{path}: field {} is not a number", keys.join("."))))
}

fn main() {
    let mut repro_path = "bench/out/smoke.json".to_string();
    let mut opt_path = "bench/out/BENCH_opt_smoke.json".to_string();
    let mut sim_path = "bench/out/BENCH_sim_smoke.json".to_string();
    let mut variation_path = "bench/out/BENCH_variation_smoke.json".to_string();
    let mut cache_path = "bench/out/BENCH_cache_smoke.json".to_string();
    let mut baseline_path = "bench/BENCH_baseline.json".to_string();
    let mut max_regress = 0.25f64;
    let mut refresh = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    fn path_arg(args: &[String], i: &mut usize) -> String {
        *i += 1;
        args.get(*i)
            .cloned()
            .unwrap_or_else(|| fail("flag requires a value"))
    }
    while i < args.len() {
        match args[i].as_str() {
            "--repro" => repro_path = path_arg(&args, &mut i),
            "--opt" => opt_path = path_arg(&args, &mut i),
            "--sim" => sim_path = path_arg(&args, &mut i),
            "--variation" => variation_path = path_arg(&args, &mut i),
            "--cache" => cache_path = path_arg(&args, &mut i),
            "--baseline" => baseline_path = path_arg(&args, &mut i),
            "--max-regress" => {
                i += 1;
                max_regress = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|r| (0.0..1.0).contains(r))
                    .unwrap_or_else(|| fail("--max-regress requires a fraction in [0, 1)"));
            }
            "--refresh" => refresh = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: perf_gate [--repro PATH] [--opt PATH] [--sim PATH] \
                     [--variation PATH] [--cache PATH] [--baseline PATH] \
                     [--max-regress F] [--refresh]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let repro = load(&repro_path);
    let opt = load(&opt_path);
    let sim = load(&sim_path);
    let variation = load(&variation_path);
    let cache = load(&cache_path);
    let repro_obs = validate_obs_section(
        &repro_path,
        &repro,
        &[
            "netlist.opt.calls",
            "netlist.opt.gates_in",
            "netlist.opt.ns",
            "netlist.sim.compiles",
            "netlist.sim.settles",
            "netlist.sim.vectors",
        ],
    );
    validate_obs_section(&opt_path, &opt, &["netlist.opt.calls", "netlist.opt.ns"]);
    validate_obs_section(
        &sim_path,
        &sim,
        &[
            "netlist.sim.compiles",
            "netlist.sim.compile_ns",
            "netlist.sim.settles",
            "netlist.sim.vectors",
        ],
    );
    validate_obs_section(
        &variation_path,
        &variation,
        &[
            "analog.variation.compiles",
            "analog.variation.lane_blocks",
            "analog.variation.trials",
            "analog.variation.rows",
        ],
    );
    // The cold pass populates (`misses`/`bytes_written`), the warm pass
    // replays from the disk tier (`disk_hits`/`bytes_read`).
    validate_obs_section(
        &cache_path,
        &cache,
        &[
            "cache.misses",
            "cache.bytes_written",
            "cache.disk_hits",
            "cache.bytes_read",
        ],
    );
    eprintln!("[perf_gate] obs report sections valid ({})", obs::SCHEMA);

    let opt_secs = repro_obs.counter("netlist.opt.ns") as f64 * 1e-9;
    let current = Baseline {
        schema: BASELINE_SCHEMA.to_string(),
        repro_opt_gates_per_sec: repro_obs.counter("netlist.opt.gates_in") as f64 / opt_secs,
        repro_verify_vectors_per_sec: num(&repro_path, &repro, &["verify", "vectors_per_sec"]),
        repro_verify_faults_per_sec: num(&repro_path, &repro, &["verify", "faults_per_sec"]),
        opt_svm16_gates_per_sec: num(&opt_path, &opt, &["svm16_gates_per_sec"]),
        sim_svm16_vectors_per_sec: num(&sim_path, &sim, &["svm16_vectors_per_sec"]),
        variation_trials_per_sec: num(&variation_path, &variation, &["tree_trials_per_sec"]),
        cache_warm_speedup: num(&cache_path, &cache, &["warm_speedup"]),
    };

    if refresh {
        let body = serde_json::to_string_pretty(&current).expect("serialize baseline");
        if let Err(err) = std::fs::write(&baseline_path, body) {
            fail(&format!("cannot write {baseline_path}: {err}"));
        }
        eprintln!("[perf_gate] wrote baseline {baseline_path}");
        return;
    }

    let baseline: Baseline = serde_json::from_str(
        &std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|err| fail(&format!("cannot read {baseline_path}: {err}"))),
    )
    .unwrap_or_else(|err| fail(&format!("cannot parse {baseline_path}: {err}")));
    if baseline.schema != BASELINE_SCHEMA {
        fail(&format!(
            "{baseline_path}: baseline schema {:?}, expected {BASELINE_SCHEMA:?}",
            baseline.schema
        ));
    }

    let checks = [
        (
            "repro.opt_gates_per_sec",
            current.repro_opt_gates_per_sec,
            baseline.repro_opt_gates_per_sec,
        ),
        (
            "repro.verify_vectors_per_sec",
            current.repro_verify_vectors_per_sec,
            baseline.repro_verify_vectors_per_sec,
        ),
        (
            "repro.verify_faults_per_sec",
            current.repro_verify_faults_per_sec,
            baseline.repro_verify_faults_per_sec,
        ),
        (
            "opt.svm16_gates_per_sec",
            current.opt_svm16_gates_per_sec,
            baseline.opt_svm16_gates_per_sec,
        ),
        (
            "sim.svm16_vectors_per_sec",
            current.sim_svm16_vectors_per_sec,
            baseline.sim_svm16_vectors_per_sec,
        ),
        (
            "variation.trials_per_sec",
            current.variation_trials_per_sec,
            baseline.variation_trials_per_sec,
        ),
        (
            "cache.warm_speedup",
            current.cache_warm_speedup,
            baseline.cache_warm_speedup,
        ),
    ];
    let floor = 1.0 - max_regress;
    let mut failed = false;
    for (name, cur, base) in checks {
        let ratio = if base > 0.0 { cur / base } else { 1.0 };
        let verdict = if ratio < floor { "FAIL" } else { "ok" };
        failed |= ratio < floor;
        eprintln!(
            "[perf_gate] {verdict:>4}  {name:<32} {cur:>12.0} vs baseline {base:>12.0} ({:+.1}%)",
            (ratio - 1.0) * 100.0
        );
    }
    if failed {
        eprintln!(
            "[perf_gate] throughput regressed by more than {:.0}%; if intentional, refresh the \
             baseline (see the one-line command in docs/observability.md)",
            max_regress * 100.0
        );
        std::process::exit(1);
    }
    eprintln!(
        "[perf_gate] all metrics within {:.0}% of baseline",
        max_regress * 100.0
    );
}
