//! Wall-clock benchmark of the worklist logic optimizer over the
//! Table-II workloads (bespoke depth-4 trees and bespoke SVMs for every
//! application) plus the largest netlist in the evaluation, the
//! conventional 16-class SVM (~438 k gates).
//!
//! Prints per-workload gates/sec and writes a `bench/out/BENCH_opt.json`
//! report (path overridable with `--json`) so before/after numbers for
//! optimizer changes are one `cargo run` away:
//!
//! ```text
//! cargo run --release -p bench --bin opt_bench -- [--smoke] [--json PATH]
//! ```
//!
//! The report carries the unified [`obs`] `report` section; see
//! `docs/observability.md`.

use ml::synth::Application;
use netlist::{optimize_with_stats, Module};
use printed_core::conventional::svm::{generate as gen_svm, SvmSpec};
use printed_core::flow::{SvmFlow, TreeFlow};
use serde::Serialize;

use bench::workloads::SEED;

/// One optimized workload in the report.
#[derive(Serialize)]
struct WorkloadResult {
    name: String,
    gates_in: usize,
    gates_out: usize,
    rewrites: usize,
    seconds: f64,
    gates_per_sec: f64,
}

/// The `BENCH_opt.json` report.
#[derive(Serialize)]
struct Report {
    smoke: bool,
    workloads: Vec<WorkloadResult>,
    /// Headline number: optimizer throughput on the conventional SVM-16
    /// netlist, the largest module the harness ever optimizes.
    svm16_gates_per_sec: f64,
    total_gates_in: usize,
    total_seconds: f64,
    /// Unified observability report (`obs-report-v1`).
    report: obs::Report,
}

fn measure(name: String, module: &Module, results: &mut Vec<WorkloadResult>) {
    let (_, stats) = optimize_with_stats(module);
    println!(
        "{name}: {} -> {} gates, {} rewrites in {:.3}s ({:.0} gates/sec)",
        stats.gates_in,
        stats.gates_out,
        stats.rewrites(),
        stats.seconds,
        stats.gates_per_sec(),
    );
    results.push(WorkloadResult {
        name,
        gates_in: stats.gates_in,
        gates_out: stats.gates_out,
        rewrites: stats.rewrites(),
        seconds: stats.seconds,
        gates_per_sec: stats.gates_per_sec(),
    });
}

fn main() {
    let mut smoke = false;
    let mut json_path = "bench/out/BENCH_opt.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => json_path = path.clone(),
                    None => {
                        eprintln!("--json requires a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: opt_bench [--smoke] [--json PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    bench::workloads::set_smoke(smoke);
    obs::reset();
    let root_span = obs::span("opt_bench");

    let apps: Vec<Application> = if smoke {
        vec![Application::Har, Application::RedWine]
    } else {
        Application::ALL.to_vec()
    };
    let mut results = Vec::new();
    for app in &apps {
        let flow = TreeFlow::new(*app, 4, SEED);
        let raw = printed_core::bespoke::bespoke_parallel_raw(&flow.qt);
        measure(format!("{}-dt4-bespoke", app.name()), &raw, &mut results);
        let flow = SvmFlow::new(*app, SEED);
        let raw = printed_core::bespoke::bespoke_svm_raw(&flow.qs);
        measure(format!("{}-svm-bespoke", app.name()), &raw, &mut results);
    }
    let svm16 = gen_svm(&SvmSpec::conventional(16));
    measure("conv-svm16".into(), &svm16, &mut results);

    drop(root_span);
    let obs_report = obs::report();
    eprint!("{}", obs_report.text_summary());

    let svm16_gates_per_sec = results.last().map(|r| r.gates_per_sec).unwrap_or_default();
    let report = Report {
        smoke,
        total_gates_in: results.iter().map(|r| r.gates_in).sum(),
        total_seconds: results.iter().map(|r| r.seconds).sum(),
        svm16_gates_per_sec,
        workloads: results,
        report: obs_report,
    };
    println!(
        "total: {} gates in {:.3}s; svm-16 at {:.0} gates/sec",
        report.total_gates_in, report.total_seconds, report.svm16_gates_per_sec
    );
    let body = serde_json::to_string_pretty(&report).expect("serialize report");
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).ok();
        }
    }
    if let Err(err) = std::fs::write(&json_path, body) {
        eprintln!("error: cannot write {json_path}: {err}");
        std::process::exit(1);
    }
    eprintln!("wrote {json_path}");
}
