//! Runs every table and figure regenerator, printing all results in the
//! canonical order and optionally dumping a combined JSON report
//! (`--json PATH`).
//!
//! The experiments are independent (each builds its own seeded
//! workloads), so they are fanned out over the [`exec`] work pool and the
//! finished tables are reassembled in list order — the printed output and
//! the report are identical at any thread count, timing fields aside.
//!
//! Flags:
//!
//! - `--threads N` — pin the worker count (also settable via the
//!   `PRINTED_ML_THREADS` environment variable; defaults to the
//!   machine's hardware parallelism);
//! - `--smoke` — run every experiment over reduced workloads (CI's
//!   end-to-end harness check);
//! - `--no-cache` — disable the content-addressed artifact cache (also
//!   settable via `PRINTED_ML_NO_CACHE=1`); by default warm runs reuse
//!   trained models, optimized netlists and PPA results from
//!   `bench/out/cache/` (see `docs/caching.md`) and produce
//!   byte-identical `experiments`/`verify` sections;
//! - `--verify` — append the equivalence/fault-grading sign-off stage
//!   (see [`bench::verify`]); the process exits nonzero if any
//!   architecture disagrees with its unoptimized reference;
//! - `--json PATH` — write the report (thread count, smoke flag,
//!   per-experiment tables, the `--verify` section when requested, and
//!   the unified [`obs`] `report` section with the span tree and
//!   pipeline counters) to `PATH`.
//!
//! Timing and optimizer throughput live exclusively in the `report`
//! section: per-experiment wall-clock under the `repro_all > <name>`
//! spans, optimizer totals under the `netlist.opt.*` counters. (The
//! deprecated top-level `seconds`/`optimizer` mirrors were removed after
//! their one-release migration window, PR 4 → PR 7.)
//!
//! See `docs/observability.md` for how to read the `report` section.

use serde::Serialize;

use bench::experiments as e;

/// A named experiment regenerator.
type Experiment = (&'static str, fn() -> Vec<bench::Table>);

/// One finished experiment in the JSON report. Wall-clock timing lives
/// in the `report` span tree, not here, so the experiment entries are
/// bit-identical between runs.
#[derive(Serialize)]
struct ExperimentResult {
    name: &'static str,
    tables: Vec<bench::Table>,
}

/// The combined `--json` report.
#[derive(Serialize)]
struct Report {
    threads: usize,
    smoke: bool,
    experiments: Vec<ExperimentResult>,
    /// Sign-off outcomes (present with `--verify`).
    verify: Option<bench::verify::VerifyReport>,
    /// Unified observability report (`obs-report-v1`): the hierarchical
    /// span tree plus every pipeline counter and gauge.
    report: obs::Report,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("usage: repro_all [--threads N] [--smoke] [--verify] [--no-cache] [--json PATH]");
    std::process::exit(2);
}

fn main() {
    let mut smoke = false;
    let mut verify = false;
    let mut no_cache = false;
    let mut json_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--verify" => verify = true,
            "--no-cache" => no_cache = true,
            "--threads" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|v| v.parse().ok()).filter(|&n| n > 0) else {
                    usage_error("--threads requires a positive integer");
                };
                exec::set_threads(n);
            }
            "--json" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    usage_error("--json requires a path");
                };
                json_path = Some(path.clone());
            }
            other => usage_error(&format!("unknown argument: {other}")),
        }
        i += 1;
    }
    bench::workloads::set_smoke(smoke);
    if !no_cache {
        cache::enable_default();
    }
    obs::reset();
    let root_span = obs::span("repro_all");

    let experiments: Vec<Experiment> = vec![
        ("table1", e::table1),
        ("table2", e::table2),
        ("table3", e::table3),
        ("table4", e::table4),
        ("table5", e::table5),
        ("fig3", e::fig3),
        ("fig6", e::fig6),
        ("fig7", e::fig7),
        ("fig9", e::fig9),
        ("fig10", e::fig10),
        ("fig11", e::fig11),
        ("fig12", e::fig12),
        ("fig13", e::fig13),
        ("fig16", e::fig16),
        ("fig17", e::fig17),
        ("fig19", e::fig19),
        ("ablations", e::ablations),
    ];
    let threads = exec::threads();
    eprintln!(
        "[repro] running {} experiments on {} thread(s){}, cache {}",
        experiments.len(),
        threads,
        if smoke { " (smoke)" } else { "" },
        if cache::enabled() { "on" } else { "off" }
    );
    let finished: Vec<Vec<bench::Table>> = exec::parallel_map(&experiments, |_, &(name, f)| {
        let _span = obs::span(name);
        let (tables, seconds) = exec::time(f);
        eprintln!("[repro] {name} finished in {seconds:.2}s");
        tables
    });

    let mut results = Vec::with_capacity(experiments.len());
    for (&(name, _), tables) in experiments.iter().zip(finished) {
        for t in &tables {
            print!("{t}");
        }
        results.push(ExperimentResult { name, tables });
    }
    let verify_report = if verify {
        let _span = obs::span("verify");
        let ((tables, report), seconds) = exec::time(bench::verify::run_verify);
        eprintln!("[repro] verify finished in {seconds:.2}s");
        for t in &tables {
            print!("{t}");
        }
        Some(report)
    } else {
        None
    };
    drop(root_span);
    let obs_report = obs::report();
    eprint!("{}", obs_report.text_summary());

    if let Some(path) = json_path {
        let report = Report {
            threads,
            smoke,
            experiments: results,
            verify: verify_report.clone(),
            report: obs_report,
        };
        let body = serde_json::to_string_pretty(&report).expect("serialize report");
        if let Some(dir) = std::path::Path::new(&path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).ok();
            }
        }
        if let Err(err) = std::fs::write(&path, body) {
            eprintln!("error: cannot write {path}: {err}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    if let Some(v) = &verify_report {
        if !v.passed() {
            eprintln!(
                "error: verification found {} failing sign-off check(s)",
                v.counter_examples
            );
            std::process::exit(1);
        }
        eprintln!(
            "[repro] verify: all {} sign-off checks passed ({:.0} vectors/sec, {:.0} faults/sec)",
            v.equivalence.len(),
            v.vectors_per_sec,
            v.faults_per_sec
        );
    }
}
