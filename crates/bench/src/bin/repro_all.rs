//! Runs every table and figure regenerator in sequence, printing all
//! results and optionally dumping a combined JSON (`--json PATH`).

use bench::experiments as e;

/// A named experiment regenerator.
type Experiment = (&'static str, fn() -> Vec<bench::Table>);

fn main() {
    let mut all = Vec::new();
    let experiments: Vec<Experiment> = vec![
        ("table1", e::table1),
        ("table2", e::table2),
        ("table3", e::table3),
        ("table4", e::table4),
        ("table5", e::table5),
        ("fig3", e::fig3),
        ("fig6", e::fig6),
        ("fig7", e::fig7),
        ("fig9", e::fig9),
        ("fig10", e::fig10),
        ("fig11", e::fig11),
        ("fig12", e::fig12),
        ("fig13", e::fig13),
        ("fig16", e::fig16),
        ("fig17", e::fig17),
        ("fig19", e::fig19),
        ("ablations", e::ablations),
    ];
    for (name, f) in experiments {
        eprintln!("[repro] running {name} ...");
        let tables = f();
        for t in &tables {
            print!("{t}");
        }
        all.extend(tables);
    }
    bench::maybe_write_json(&all);
}
