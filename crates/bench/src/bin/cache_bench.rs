//! Cold-vs-warm benchmark of the content-addressed artifact cache.
//!
//! Runs the full experiment suite twice against a dedicated, freshly
//! wiped cache directory (`bench/out/cache_bench`, overridable with
//! `--cache-dir`):
//!
//! 1. **cold** — every artifact is computed and back-filled into the
//!    two-tier store;
//! 2. **warm** — the in-process memo tier is dropped first
//!    ([`cache::clear_memory`]), so every hit is served from the on-disk
//!    tier, exactly like a fresh `repro_all` process over a populated
//!    `bench/out/cache/`.
//!
//! The rendered tables of both passes are *asserted* byte-identical
//! before the report is written — the cache must never change results,
//! only skip recomputation. Prints both wall-times and writes a
//! `bench/out/BENCH_cache.json` report (path overridable with `--json`):
//!
//! ```text
//! cargo run --release -p bench --bin cache_bench -- [--smoke] [--threads N] [--json PATH]
//! ```
//!
//! The headline `warm_speedup` (cold seconds over warm seconds) is what
//! `perf_gate --cache` regresses against. The report carries the unified
//! [`obs`] `report` section; the cold pass shows up in `cache.misses` /
//! `cache.bytes_written`, the warm pass in `cache.disk_hits` /
//! `cache.bytes_read`.

use serde::Serialize;

use bench::experiments as e;

/// A named experiment regenerator (same list as `repro_all`).
type Experiment = (&'static str, fn() -> Vec<bench::Table>);

/// The `BENCH_cache.json` report.
#[derive(Serialize)]
struct Report {
    smoke: bool,
    threads: usize,
    /// Wall-clock of the populate pass (empty cache).
    cold_seconds: f64,
    /// Wall-clock of the disk-tier replay pass.
    warm_seconds: f64,
    /// Headline number: `cold_seconds / warm_seconds` (gated by
    /// `perf_gate --cache`).
    warm_speedup: f64,
    /// Unified observability report (`obs-report-v1`) covering both
    /// passes: cold populates (`cache.misses`), warm replays
    /// (`cache.disk_hits`).
    report: obs::Report,
}

fn experiments() -> Vec<Experiment> {
    vec![
        ("table1", e::table1),
        ("table2", e::table2),
        ("table3", e::table3),
        ("table4", e::table4),
        ("table5", e::table5),
        ("fig3", e::fig3),
        ("fig6", e::fig6),
        ("fig7", e::fig7),
        ("fig9", e::fig9),
        ("fig10", e::fig10),
        ("fig11", e::fig11),
        ("fig12", e::fig12),
        ("fig13", e::fig13),
        ("fig16", e::fig16),
        ("fig17", e::fig17),
        ("fig19", e::fig19),
        ("ablations", e::ablations),
    ]
}

/// Runs the whole suite under an obs span and renders every table into
/// one canonical string (the cold/warm identity witness).
fn run_pass(pass: &'static str) -> (String, f64) {
    let _span = obs::span(pass);
    let list = experiments();
    let (finished, seconds) = exec::time(|| {
        exec::parallel_map(&list, |_, &(name, f)| {
            let _span = obs::span(name);
            f()
        })
    });
    let mut rendered = String::new();
    for tables in &finished {
        for t in tables {
            rendered.push_str(&t.to_string());
        }
    }
    (rendered, seconds)
}

fn main() {
    let mut smoke = false;
    let mut json_path = "bench/out/BENCH_cache.json".to_string();
    let mut cache_dir = "bench/out/cache_bench".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--threads" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()).filter(|&n| n > 0) {
                    Some(n) => exec::set_threads(n),
                    None => {
                        eprintln!("--threads requires a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => json_path = path.clone(),
                    None => {
                        eprintln!("--json requires a path");
                        std::process::exit(2);
                    }
                }
            }
            "--cache-dir" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => cache_dir = dir.clone(),
                    None => {
                        eprintln!("--cache-dir requires a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: cache_bench [--smoke] [--threads N] [--cache-dir DIR] [--json PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    bench::workloads::set_smoke(smoke);

    // A dedicated, wiped store: the cold pass must really be cold, and
    // the shared `bench/out/cache/` must not absorb benchmark artifacts.
    cache::set_disk_root(Some(std::path::PathBuf::from(&cache_dir)));
    cache::set_enabled(true);
    cache::clear().expect("wipe benchmark cache dir");

    obs::reset();
    let root_span = obs::span("cache_bench");
    let threads = exec::threads();
    eprintln!(
        "[cache_bench] {} experiments on {} thread(s){}, store {}",
        experiments().len(),
        threads,
        if smoke { " (smoke)" } else { "" },
        cache_dir
    );

    let (cold_tables, cold_seconds) = run_pass("cold");
    eprintln!("[cache_bench] cold pass: {cold_seconds:.2}s");
    // Drop the memo tier so the warm pass replays from disk, like a
    // fresh process over a populated cache directory.
    cache::clear_memory();
    let (warm_tables, warm_seconds) = run_pass("warm");
    eprintln!("[cache_bench] warm pass: {warm_seconds:.2}s");
    assert_eq!(
        cold_tables, warm_tables,
        "cache changed experiment output between cold and warm passes"
    );
    eprintln!("[cache_bench] cold and warm tables byte-identical");

    drop(root_span);
    let obs_report = obs::report();
    eprint!("{}", obs_report.text_summary());
    assert!(
        obs_report.counter("cache.disk_hits") > 0,
        "warm pass never hit the disk tier"
    );

    let warm_speedup = if warm_seconds > 0.0 {
        cold_seconds / warm_seconds
    } else {
        0.0
    };
    println!(
        "headline: warm replay {warm_speedup:.2}x faster than cold ({cold_seconds:.2}s -> {warm_seconds:.2}s)"
    );
    let report = Report {
        smoke,
        threads,
        cold_seconds,
        warm_seconds,
        warm_speedup,
        report: obs_report,
    };
    let body = serde_json::to_string_pretty(&report).expect("serialize report");
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).ok();
        }
    }
    if let Err(err) = std::fs::write(&json_path, body) {
        eprintln!("error: cannot write {json_path}: {err}");
        std::process::exit(1);
    }
    eprintln!("wrote {json_path}");
}
