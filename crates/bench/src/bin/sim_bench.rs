//! Throughput benchmark of the simulation engines: the interpreted
//! 64-lane reference (`netlist::batch::reference`), the compiled tape at
//! 64 lanes (`WideSim<1>`) and the compiled tape at 256 lanes
//! (`WideSim<4>`), over two sign-off-grade workloads — the conventional
//! 16-bit SVM datapath (~438 k gates, the largest module the harness
//! ever simulates) and a bespoke depth-4 tree.
//!
//! Every engine replays the same deterministic vector stream and the
//! per-vector outputs are checksummed in vector order, so the run
//! *asserts* bit-identity across engines before it reports speedups.
//! Prints per-engine vectors/sec and writes a `bench/out/BENCH_sim.json`
//! report (path overridable with `--json`):
//!
//! ```text
//! cargo run --release -p bench --bin sim_bench -- [--smoke] [--json PATH]
//! ```
//!
//! The headline `svm16_vectors_per_sec` (compiled 256-lane kernel on the
//! conventional SVM-16) is what `perf_gate --sim` regresses against. The
//! report carries the unified [`obs`] `report` section; see
//! `docs/observability.md`.

use std::sync::Arc;

use netlist::batch::reference::InterpretedSimulator;
use netlist::compile::record_settles;
use netlist::{BatchSimulator, CompiledNetlist, Module, WideSim};
use printed_core::conventional::svm::{generate_combinational as gen_svm_comb, SvmSpec};
use printed_core::flow::TreeFlow;
use serde::Serialize;

use bench::workloads::SEED;

/// One engine's replay of a workload's vector stream.
#[derive(Serialize)]
struct EngineResult {
    /// `interpreted-64`, `compiled-64` or `compiled-256`.
    engine: &'static str,
    /// Vectors evaluated per settle pass.
    lanes: usize,
    vectors: usize,
    seconds: f64,
    vectors_per_sec: f64,
    /// Order-sensitive FNV fold of every output value in vector order —
    /// identical across engines by construction (asserted before the
    /// report is written).
    checksum: u64,
}

/// One benchmarked workload.
#[derive(Serialize)]
struct WorkloadResult {
    name: String,
    gates: usize,
    /// One-off tape build (`CompiledNetlist::compile`), paid once and
    /// shared by both compiled engines.
    compile_seconds: f64,
    engines: Vec<EngineResult>,
    /// `compiled-256` vectors/sec over `interpreted-64` vectors/sec.
    speedup_vs_interpreter: f64,
}

/// The `BENCH_sim.json` report.
#[derive(Serialize)]
struct Report {
    smoke: bool,
    workloads: Vec<WorkloadResult>,
    /// Headline number: compiled 256-lane throughput on the conventional
    /// SVM-16 netlist (gated by `perf_gate --sim`).
    svm16_vectors_per_sec: f64,
    /// Headline speedup: compiled 256-lane over the interpreter on the
    /// same SVM-16 vector stream.
    svm16_speedup: f64,
    /// Unified observability report (`obs-report-v1`).
    report: obs::Report,
}

/// Deterministic stimulus: one value per input port per vector, masked
/// to the port width, drawn from a seeded xorshift64 stream so every
/// engine (and every run) replays the identical vectors.
fn gen_vectors(module: &Module, count: usize, seed: u64) -> Vec<Vec<u64>> {
    let masks: Vec<u64> = module
        .inputs
        .iter()
        .map(|p| {
            if p.width() >= 64 {
                u64::MAX
            } else {
                (1u64 << p.width()) - 1
            }
        })
        .collect();
    let mut state = seed | 1;
    let mut draw = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..count)
        .map(|_| masks.iter().map(|m| draw() & m).collect())
        .collect()
}

/// Order-sensitive FNV-1a-style fold of the per-vector output columns
/// (port-major, vector-minor — chunk-size independent).
fn checksum(cols: &[Vec<u64>]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for col in cols {
        for &v in col {
            h = (h ^ v).wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn finish(
    engine: &'static str,
    lanes: usize,
    vectors: usize,
    seconds: f64,
    cols: &[Vec<u64>],
) -> EngineResult {
    let vps = if seconds > 0.0 {
        vectors as f64 / seconds
    } else {
        0.0
    };
    println!("  {engine:<16} {lanes:>4} lanes  {vectors} vectors in {seconds:.3}s ({vps:.0} vectors/sec)");
    EngineResult {
        engine,
        lanes,
        vectors,
        seconds,
        vectors_per_sec: vps,
        checksum: checksum(cols),
    }
}

// The timed region of each engine is load + settle over pre-packed
// images — the replay path verify and fault grading actually drive
// (vectors are packed once and replayed per span / per fault site).
// Transposition and output extraction run outside the timer; outputs
// are still collected per vector for the cross-engine identity check.

fn run_interpreted(module: &Module, vectors: &[Vec<u64>]) -> EngineResult {
    let mut sim = InterpretedSimulator::new(module);
    let images: Vec<(Vec<u64>, usize)> = vectors
        .chunks(64)
        .map(|c| (sim.pack_vectors(c), c.len()))
        .collect();
    let mut cols: Vec<Vec<u64>> = vec![Vec::with_capacity(vectors.len()); module.outputs.len()];
    let mut seconds = 0f64;
    for (image, n) in &images {
        let t = std::time::Instant::now();
        sim.load_packed(image);
        sim.settle();
        seconds += t.elapsed().as_secs_f64();
        for (col, p) in cols.iter_mut().zip(&module.outputs) {
            col.extend(sim.lanes(&p.name, *n));
        }
    }
    finish("interpreted-64", 64, vectors.len(), seconds, &cols)
}

fn run_compiled_64(
    module: &Module,
    compiled: &Arc<CompiledNetlist>,
    vectors: &[Vec<u64>],
) -> EngineResult {
    let mut sim = BatchSimulator::from_compiled(Arc::clone(compiled));
    let images: Vec<(Vec<u64>, usize)> = vectors
        .chunks(64)
        .map(|c| (sim.pack_vectors(c), c.len()))
        .collect();
    let mut cols: Vec<Vec<u64>> = vec![Vec::with_capacity(vectors.len()); module.outputs.len()];
    let mut seconds = 0f64;
    for (image, n) in &images {
        let t = std::time::Instant::now();
        sim.load_packed(image);
        sim.settle();
        seconds += t.elapsed().as_secs_f64();
        for (col, p) in cols.iter_mut().zip(&module.outputs) {
            col.extend(sim.lanes(&p.name, *n));
        }
    }
    record_settles(images.len() as u64, vectors.len() as u64);
    finish("compiled-64", 64, vectors.len(), seconds, &cols)
}

fn run_compiled_256(
    module: &Module,
    compiled: &Arc<CompiledNetlist>,
    vectors: &[Vec<u64>],
) -> EngineResult {
    const LANES: usize = WideSim::<4>::LANES;
    let mut sim: WideSim<4> = WideSim::new(Arc::clone(compiled));
    let images: Vec<(Vec<[u64; 4]>, usize)> = vectors
        .chunks(LANES)
        .map(|c| (sim.pack_vectors(c), c.len()))
        .collect();
    let mut cols: Vec<Vec<u64>> = vec![Vec::with_capacity(vectors.len()); module.outputs.len()];
    let mut seconds = 0f64;
    for (image, n) in &images {
        let t = std::time::Instant::now();
        sim.load_packed(image);
        sim.settle();
        seconds += t.elapsed().as_secs_f64();
        for (col, p) in cols.iter_mut().zip(&module.outputs) {
            col.extend(sim.lanes(&p.name, *n));
        }
    }
    record_settles(images.len() as u64, vectors.len() as u64);
    finish("compiled-256", LANES, vectors.len(), seconds, &cols)
}

fn run_workload(name: &str, module: &Module, vector_count: usize) -> WorkloadResult {
    let vectors = gen_vectors(module, vector_count, SEED ^ name.len() as u64);
    println!(
        "{name}: {} gates, {} vectors",
        module.gates.len(),
        vectors.len()
    );
    let (compiled, compile_seconds) = exec::time(|| Arc::new(CompiledNetlist::compile(module)));
    println!(
        "  tape compiled in {compile_seconds:.3}s ({} instructions)",
        compiled.tape_len()
    );
    let engines = vec![
        run_interpreted(module, &vectors),
        run_compiled_64(module, &compiled, &vectors),
        run_compiled_256(module, &compiled, &vectors),
    ];
    for e in &engines[1..] {
        assert_eq!(
            e.checksum, engines[0].checksum,
            "{name}: {} outputs diverge from the interpreter",
            e.engine
        );
    }
    let speedup = if engines[0].vectors_per_sec > 0.0 {
        engines[2].vectors_per_sec / engines[0].vectors_per_sec
    } else {
        0.0
    };
    println!("  speedup (compiled-256 vs interpreted-64): {speedup:.2}x");
    WorkloadResult {
        name: name.to_string(),
        gates: module.gates.len(),
        compile_seconds,
        engines,
        speedup_vs_interpreter: speedup,
    }
}

fn main() {
    let mut smoke = false;
    let mut json_path = "bench/out/BENCH_sim.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(path) => json_path = path.clone(),
                    None => {
                        eprintln!("--json requires a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: sim_bench [--smoke] [--json PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    bench::workloads::set_smoke(smoke);
    obs::reset();
    let root_span = obs::span("sim_bench");

    // Smoke halves the stream rather than gutting it: the headline is a
    // perf-gate input, and anything much shorter times too few settle
    // passes on the big netlist to be stable within the gate's margin.
    let vector_count = if smoke { 8192 } else { 16384 };
    let mut workloads = Vec::new();
    {
        let flow = TreeFlow::new(ml::synth::Application::Har, 4, SEED);
        let tree = printed_core::bespoke::bespoke_parallel_raw(&flow.qt);
        workloads.push(run_workload("har-dt4-bespoke", &tree, vector_count));
    }
    // The conventional SVM-16 datapath (multiplier array + adder tree +
    // class mapper, ~438 k gates) — the largest module the harness ever
    // simulates. The register-free variant is used because the batch
    // kernels are combinational-only; the core is identical.
    let svm16 = gen_svm_comb(&SvmSpec::conventional(16));
    workloads.push(run_workload("conv-svm16", &svm16, vector_count));

    drop(root_span);
    let obs_report = obs::report();
    eprint!("{}", obs_report.text_summary());

    let svm16_result = workloads.last().expect("svm16 ran");
    let svm16_vectors_per_sec = svm16_result.engines[2].vectors_per_sec;
    let svm16_speedup = svm16_result.speedup_vs_interpreter;
    let report = Report {
        smoke,
        svm16_vectors_per_sec,
        svm16_speedup,
        workloads,
        report: obs_report,
    };
    println!(
        "headline: svm-16 at {:.0} vectors/sec on the compiled 256-lane kernel ({:.2}x the interpreter)",
        report.svm16_vectors_per_sec, report.svm16_speedup
    );
    let body = serde_json::to_string_pretty(&report).expect("serialize report");
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).ok();
        }
    }
    if let Err(err) = std::fs::write(&json_path, body) {
        eprintln!("error: cannot write {json_path}: {err}");
        std::process::exit(1);
    }
    eprintln!("wrote {json_path}");
}
