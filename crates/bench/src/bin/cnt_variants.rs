//! CNT-TFT counterparts of Figs. 6/7/11 — quoted in the paper's prose as
//! "(not shown)": bespoke serial 1.02x/1.33x/1.26x, bespoke parallel
//! 6.6x/62.6x/27.3x, bespoke SVM 1.7x/16x/8.96x (delay/area/power
//! averages). Pass `--json PATH` to dump machine-readable results.

use bench::{fmt_ratio, maybe_write_json, Table};
use pdk::Technology;
use printed_core::flow::{SvmArch, TreeArch};
use printed_core::report::Improvement;

fn tree_table(title: &str, arch: TreeArch, baseline: TreeArch) -> Table {
    let mut t = Table::new(title, &["dataset", "depth", "delay", "area", "power"]);
    let mut imps = Vec::new();
    for depth in [2usize, 4, 8] {
        for flow in bench::workloads::tree_flows(depth) {
            let b = flow.report(baseline, Technology::CntTft);
            let m = flow.report(arch, Technology::CntTft);
            if m.area.is_zero() {
                continue;
            }
            let imp = m.improvement_over(&b);
            imps.push(imp);
            t.row(vec![
                flow.app.name().into(),
                depth.to_string(),
                fmt_ratio(imp.delay),
                fmt_ratio(imp.area),
                fmt_ratio(imp.power),
            ]);
        }
    }
    let mean = Improvement::mean(&imps);
    t.row(vec![
        "AVERAGE".into(),
        "-".into(),
        fmt_ratio(mean.delay),
        fmt_ratio(mean.area),
        fmt_ratio(mean.power),
    ]);
    t
}

fn main() {
    let mut tables = vec![
        tree_table(
            "CNT-TFT: bespoke serial vs conventional serial (paper avg 1.02x/1.33x/1.26x)",
            TreeArch::BespokeSerial,
            TreeArch::ConventionalSerial,
        ),
        tree_table(
            "CNT-TFT: bespoke parallel vs conventional parallel (paper avg 6.6x/62.6x/27.3x)",
            TreeArch::BespokeParallel,
            TreeArch::ConventionalParallel,
        ),
    ];
    let mut svm = Table::new(
        "CNT-TFT: bespoke SVM vs conventional SVM (paper avg 1.7x/16x/8.96x)",
        &["dataset", "delay", "area", "power"],
    );
    let mut imps = Vec::new();
    for flow in bench::workloads::svm_flows() {
        let b = flow.report(SvmArch::Conventional, Technology::CntTft);
        let m = flow.report(SvmArch::Bespoke, Technology::CntTft);
        let imp = m.improvement_over(&b);
        imps.push(imp);
        svm.row(vec![
            flow.app.name().into(),
            fmt_ratio(imp.delay),
            fmt_ratio(imp.area),
            fmt_ratio(imp.power),
        ]);
    }
    let mean = Improvement::mean(&imps);
    svm.row(vec![
        "AVERAGE".into(),
        fmt_ratio(mean.delay),
        fmt_ratio(mean.area),
        fmt_ratio(mean.power),
    ]);
    tables.push(svm);
    for t in &tables {
        print!("{t}");
    }
    maybe_write_json(&tables);
}
