//! The `repro_all --verify` sign-off stage.
//!
//! Two sub-stages, both riding the lane-parallel verification engine:
//!
//! 1. **Equivalence sign-off** — every optimized/lookup architecture of a
//!    set of representative workloads is miter-checked against its
//!    unoptimized reference netlist via
//!    [`printed_core::signoff`] (64 input vectors per settle pass);
//! 2. **Fault grading** — the Table-VII-style manufacturing-test
//!    workload (bespoke depth-4 Har/Cardio trees fed their own test-set
//!    vectors) is stuck-at graded with in-place fault injection, timing
//!    `faults_per_sec`.
//!
//! The returned [`VerifyReport`] lands in the `repro_all --json` report;
//! `repro_all` exits nonzero if any check found a counter-example.

use ml::synth::Application;
use printed_core::flow::{SvmFlow, TreeArch, TreeFlow};
use printed_core::signoff::{SignoffRecord, SignoffStatus};
use serde::Serialize;

use crate::workloads::{row_cap, smoke, tree_test_vectors, SEED};
use crate::{fmt3, Table};

/// Exhaustive-enumeration cutoff (total input bits) for sign-off checks.
const EXHAUSTIVE_LIMIT: u32 = 16;

/// One timed fault-grading run in the JSON report.
#[derive(Debug, Clone, Serialize)]
pub struct FaultGradeRecord {
    /// Workload name (e.g. `"har-dt4"`).
    pub design: String,
    /// Single-stuck-at fault sites graded.
    pub sites: usize,
    /// Sites the vector set detected.
    pub detected: usize,
    /// `detected / sites`.
    pub coverage: f64,
    /// Test vectors applied.
    pub vectors: usize,
    /// Wall-clock seconds of the grading.
    pub seconds: f64,
    /// Throughput (`sites / seconds`).
    pub faults_per_sec: f64,
}

/// The `--verify` section of the `repro_all --json` report.
#[derive(Debug, Clone, Serialize)]
pub struct VerifyReport {
    /// Equivalence sign-off outcomes.
    pub equivalence: Vec<SignoffRecord>,
    /// Fault-grading outcomes.
    pub fault_grading: Vec<FaultGradeRecord>,
    /// Sign-off checks that did **not** pass (counter-example or port
    /// mismatch).
    pub counter_examples: usize,
    /// Aggregate equivalence throughput (total vectors / total seconds).
    pub vectors_per_sec: f64,
    /// Aggregate fault-grading throughput (total sites / total seconds).
    pub faults_per_sec: f64,
}

impl VerifyReport {
    /// True when every sign-off check passed.
    pub fn passed(&self) -> bool {
        self.counter_examples == 0
    }
}

/// Tree workloads signed off: the quick trio at a realistic depth, plus a
/// shallow tree outside smoke mode (shallow trees stress the constant
/// folding hardest — most of the netlist collapses).
fn tree_workloads() -> Vec<(Application, usize)> {
    let mut w: Vec<(Application, usize)> = crate::workloads::quick_apps()
        .into_iter()
        .map(|app| (app, 4))
        .collect();
    if !smoke() {
        w.push((Application::Pendigits, 2));
    }
    w
}

/// SVM workloads signed off.
fn svm_workloads() -> Vec<Application> {
    if smoke() {
        vec![Application::RedWine]
    } else {
        vec![Application::RedWine, Application::Cardio]
    }
}

/// Sampled vectors per sign-off check (when exhaustive enumeration does
/// not apply).
fn samples() -> usize {
    if smoke() {
        512
    } else {
        4096
    }
}

fn status_cell(status: &SignoffStatus) -> String {
    match status {
        SignoffStatus::Pass => "pass".into(),
        SignoffStatus::CounterExample(v) => format!("COUNTER-EXAMPLE {v:?}"),
        SignoffStatus::PortMismatch(msg) => format!("PORT-MISMATCH: {msg}"),
    }
}

/// Runs both sign-off sub-stages over the smoke-aware default workloads,
/// returning printable tables and the JSON report section.
pub fn run_verify() -> (Vec<Table>, VerifyReport) {
    run_configured(&tree_workloads(), &svm_workloads(), samples(), row_cap(150))
}

/// [`run_verify`] with every workload knob explicit (tests use this to
/// stay independent of the process-wide smoke flag).
fn run_configured(
    trees: &[(Application, usize)],
    svms: &[Application],
    samples: usize,
    rows: usize,
) -> (Vec<Table>, VerifyReport) {
    // Stage 1: equivalence sign-off of every architecture pair.
    let mut equivalence: Vec<SignoffRecord> = Vec::new();
    for &(app, depth) in trees {
        let flow = TreeFlow::new(app, depth, SEED);
        equivalence.extend(flow.signoff(EXHAUSTIVE_LIMIT, samples));
    }
    for &app in svms {
        let flow = SvmFlow::new(app, SEED);
        equivalence.extend(flow.signoff(EXHAUSTIVE_LIMIT, samples));
    }

    let mut eq_table = Table::new(
        "Verify: equivalence sign-off (optimized vs unoptimized reference)",
        &[
            "design",
            "check",
            "status",
            "mode",
            "vectors",
            "seconds",
            "vectors/sec",
        ],
    );
    for r in &equivalence {
        eq_table.row(vec![
            r.design.clone(),
            r.check.clone(),
            status_cell(&r.status),
            if r.exhaustive {
                "exhaustive".into()
            } else {
                "sampled".into()
            },
            r.vectors.to_string(),
            format!("{:.3}", r.seconds),
            fmt3(r.vectors_per_sec),
        ]);
    }

    // Stage 2: fault grading of the Table-VII manufacturing-test workload.
    let mut fault_grading: Vec<FaultGradeRecord> = Vec::new();
    for app in [Application::Har, Application::Cardio] {
        let flow = TreeFlow::new(app, 4, SEED);
        let module = flow.module(TreeArch::BespokeParallel).expect("digital");
        let vectors = tree_test_vectors(&flow, rows);
        let (cov, seconds) = exec::time(|| netlist::fault_coverage(&module, &vectors));
        fault_grading.push(FaultGradeRecord {
            design: format!("{}-dt4", app.name()),
            sites: cov.total,
            detected: cov.detected,
            coverage: cov.coverage(),
            vectors: vectors.len(),
            seconds,
            faults_per_sec: if seconds > 0.0 {
                cov.total as f64 / seconds
            } else {
                0.0
            },
        });
    }

    let mut fault_table = Table::new(
        "Verify: stuck-at fault grading (in-place lane-parallel injection)",
        &[
            "design",
            "sites",
            "detected",
            "coverage",
            "vectors",
            "seconds",
            "faults/sec",
        ],
    );
    for r in &fault_grading {
        fault_table.row(vec![
            r.design.clone(),
            r.sites.to_string(),
            r.detected.to_string(),
            fmt3(r.coverage),
            r.vectors.to_string(),
            format!("{:.3}", r.seconds),
            fmt3(r.faults_per_sec),
        ]);
    }

    let counter_examples = equivalence.iter().filter(|r| !r.passed()).count();
    let eq_secs: f64 = equivalence.iter().map(|r| r.seconds).sum();
    let eq_vecs: usize = equivalence.iter().map(|r| r.vectors).sum();
    let fg_secs: f64 = fault_grading.iter().map(|r| r.seconds).sum();
    let fg_sites: usize = fault_grading.iter().map(|r| r.sites).sum();
    let report = VerifyReport {
        equivalence,
        fault_grading,
        counter_examples,
        vectors_per_sec: if eq_secs > 0.0 {
            eq_vecs as f64 / eq_secs
        } else {
            0.0
        },
        faults_per_sec: if fg_secs > 0.0 {
            fg_sites as f64 / fg_secs
        } else {
            0.0
        },
    };
    (vec![eq_table, fault_table], report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_stage_finds_no_counterexamples() {
        let (tables, report) =
            run_configured(&[(Application::Har, 3)], &[Application::RedWine], 256, 30);
        assert_eq!(tables.len(), 2);
        assert!(report.passed(), "{:?}", report.equivalence);
        assert!(report.vectors_per_sec > 0.0);
        assert!(report.faults_per_sec > 0.0);
        assert_eq!(
            report.equivalence.len(),
            4 + 3,
            "1 tree workload x 4 checks + 1 svm workload x 3 checks"
        );
        assert_eq!(report.fault_grading.len(), 2);
        assert!(report.fault_grading.iter().all(|r| r.coverage > 0.1));
    }
}
