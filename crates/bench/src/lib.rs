#![warn(missing_docs)]

//! # bench — the evaluation harness
//!
//! One binary per table and figure of the paper's evaluation section, plus
//! Criterion micro-benchmarks over the generator pipeline. Each binary
//! prints the same rows/series the paper reports and (optionally, with
//! `--json PATH`) dumps machine-readable results for EXPERIMENTS.md.
//!
//! Run them all with:
//!
//! ```text
//! cargo run --release -p bench --bin repro_all
//! ```

use std::fmt;

pub mod experiments;
pub mod verify;
pub mod workloads;

/// A rendered results table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (w, cell) in widths.iter().zip(cells) {
                if !first {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
                first = false;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        )?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with three significant-ish digits, like the paper's
/// tables.
pub fn fmt3(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.3}")
    }
}

/// Formats an improvement ratio the way the paper writes them ("48.9x").
pub fn fmt_ratio(x: f64) -> String {
    format!("{}x", fmt3(x))
}

/// Writes tables as JSON when the caller passed `--json PATH`.
///
/// # Panics
/// Panics if the file cannot be written.
pub fn maybe_write_json(tables: &[Table]) {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            let path = args.next().expect("--json requires a path");
            let body = serde_json::to_string_pretty(tables).expect("serialize tables");
            std::fs::write(&path, body).expect("write json");
            eprintln!("wrote {path}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        let s = t.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("long-name"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_are_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt3_scales_precision() {
        assert_eq!(fmt3(0.1234), "0.123");
        assert_eq!(fmt3(1.234), "1.23");
        assert_eq!(fmt3(12.34), "12.3");
        assert_eq!(fmt3(123.4), "123");
        assert_eq!(fmt3(0.0), "0");
        assert_eq!(fmt_ratio(48.91), "48.9x");
    }
}
