//! Shared workload construction for the table/figure binaries.

use ml::synth::Application;
use printed_core::flow::{SvmFlow, TreeFlow};

/// The seed every reproduction run uses (deterministic results).
pub const SEED: u64 = 7;

/// Tree depths swept by the paper (DT-1/2/4/8).
pub const DEPTHS: [usize; 4] = [1, 2, 4, 8];

/// Builds tree workloads for every benchmark dataset at `depth`.
pub fn tree_flows(depth: usize) -> Vec<TreeFlow> {
    Application::ALL.iter().map(|&app| TreeFlow::new(app, depth, SEED)).collect()
}

/// Builds SVM workloads for every benchmark dataset.
pub fn svm_flows() -> Vec<SvmFlow> {
    Application::ALL.iter().map(|&app| SvmFlow::new(app, SEED)).collect()
}

/// A fast subset (used by Criterion benches to keep wall time sane):
/// one easy, one hard, one ordinal dataset.
pub fn quick_apps() -> [Application; 3] {
    [Application::Har, Application::Cardio, Application::RedWine]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_apps_are_distinct() {
        let a = quick_apps();
        assert_ne!(a[0], a[1]);
        assert_ne!(a[1], a[2]);
    }

    #[test]
    fn tree_flows_cover_all_applications() {
        let flows = tree_flows(1);
        assert_eq!(flows.len(), 7);
        assert!(flows.iter().all(|f| f.depth == 1));
    }
}
