//! Shared workload construction for the table/figure binaries.

use std::sync::atomic::{AtomicBool, Ordering};

use ml::synth::Application;
use printed_core::flow::{SvmFlow, TreeFlow};

/// The seed every reproduction run uses (deterministic results).
pub const SEED: u64 = 7;

/// Tree depths swept by the paper (DT-1/2/4/8).
pub const DEPTHS: [usize; 4] = [1, 2, 4, 8];

/// Process-wide smoke-mode switch (`repro_all --smoke`): every experiment
/// still runs and emits its tables, but over reduced workloads —
/// [`quick_apps`] instead of all seven datasets, a two-point depth sweep,
/// and smaller Monte Carlo / vector budgets. CI uses this to validate the
/// whole harness end-to-end in minutes rather than regenerating the full
/// paper numbers.
static SMOKE: AtomicBool = AtomicBool::new(false);

/// Turns smoke mode on or off for the whole process.
pub fn set_smoke(on: bool) {
    SMOKE.store(on, Ordering::Relaxed);
}

/// True when the process runs in smoke mode.
pub fn smoke() -> bool {
    SMOKE.load(Ordering::Relaxed)
}

/// The datasets in play: all seven, or the quick trio in smoke mode.
pub fn apps() -> Vec<Application> {
    if smoke() {
        quick_apps().to_vec()
    } else {
        Application::ALL.to_vec()
    }
}

/// The depth sweep: the paper's DT-1/2/4/8, thinned to {1, 4} in smoke
/// mode (one trivial and one realistic depth).
pub fn depths() -> Vec<usize> {
    if smoke() {
        vec![1, 4]
    } else {
        DEPTHS.to_vec()
    }
}

/// The deep-tree configurations the lookup figures target ({4, 8}; just
/// {4} in smoke mode).
pub fn deep_depths() -> Vec<usize> {
    if smoke() {
        vec![4]
    } else {
        vec![4, 8]
    }
}

/// Monte Carlo trials per variation point (16; 4 in smoke mode).
pub fn mc_trials() -> usize {
    if smoke() {
        4
    } else {
        16
    }
}

/// Caps a test-row / vector budget in smoke mode.
pub fn row_cap(full: usize) -> usize {
    if smoke() {
        full.min(30)
    } else {
        full
    }
}

/// Builds tree workloads for every benchmark dataset at `depth`.
pub fn tree_flows(depth: usize) -> Vec<TreeFlow> {
    apps()
        .into_iter()
        .map(|app| TreeFlow::new(app, depth, SEED))
        .collect()
}

/// Builds SVM workloads for every benchmark dataset.
pub fn svm_flows() -> Vec<SvmFlow> {
    apps()
        .into_iter()
        .map(|app| SvmFlow::new(app, SEED))
        .collect()
}

/// A fast subset (used by Criterion benches to keep wall time sane):
/// one easy, one hard, one ordinal dataset.
pub fn quick_apps() -> [Application; 3] {
    [Application::Har, Application::Cardio, Application::RedWine]
}

/// The Table-VII-style manufacturing-test stimulus for a tree workload:
/// up to `rows` real test-set rows (they exercise the trained decision
/// paths) plus per-feature min/max corner vectors (they toggle every
/// comparator). Shared by the fault-coverage ablation, the `--verify`
/// fault-grading stage and the `fault_bench` binary so they all grade the
/// same vector set.
pub fn tree_test_vectors(flow: &TreeFlow, rows: usize) -> Vec<Vec<u64>> {
    let used = flow.qt.used_features();
    let mut vectors: Vec<Vec<u64>> = flow
        .test
        .x
        .iter()
        .take(rows)
        .map(|row| {
            let codes = flow.fq.code_row(row);
            used.iter().map(|&f| codes[f]).collect()
        })
        .collect();
    let max_code = (1u64 << flow.choice.bits) - 1;
    for f in 0..used.len() {
        for corner in [0, max_code] {
            let mut v: Vec<u64> = vec![max_code / 2; used.len()];
            v[f] = corner;
            vectors.push(v);
        }
    }
    vectors
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that read or toggle the process-wide smoke flag.
    static SMOKE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn quick_apps_are_distinct() {
        let a = quick_apps();
        assert_ne!(a[0], a[1]);
        assert_ne!(a[1], a[2]);
    }

    #[test]
    fn tree_flows_cover_all_applications() {
        let _guard = SMOKE_LOCK.lock().unwrap();
        let flows = tree_flows(1);
        assert_eq!(flows.len(), 7);
        assert!(flows.iter().all(|f| f.depth == 1));
    }

    #[test]
    fn smoke_mode_shrinks_every_workload_knob() {
        let _guard = SMOKE_LOCK.lock().unwrap();
        assert!(!smoke(), "smoke must default to off");
        assert_eq!(apps().len(), 7);
        assert_eq!(depths(), vec![1, 2, 4, 8]);
        set_smoke(true);
        assert_eq!(apps(), quick_apps().to_vec());
        assert_eq!(depths(), vec![1, 4]);
        assert_eq!(deep_depths(), vec![4]);
        assert_eq!(mc_trials(), 4);
        assert_eq!(row_cap(150), 30);
        assert_eq!(row_cap(10), 10);
        set_smoke(false);
        assert_eq!(mc_trials(), 16);
        assert_eq!(row_cap(150), 150);
    }
}
