//! Derive macros for the in-repo `serde` stand-in.
//!
//! Implemented directly against `proc_macro` (no `syn`/`quote`, which
//! live on the unreachable registry). Supports exactly the shapes this
//! workspace derives on:
//!
//! * structs with named fields;
//! * tuple structs (including newtypes);
//! * enums whose variants are unit, tuple or struct-like;
//! * no generic parameters (none of the derived types have any).
//!
//! The JSON encoding matches serde_json's defaults for these shapes, so
//! artifacts emitted before the vendoring keep their schema: named
//! structs become objects, a newtype struct is transparent, unit
//! variants become strings, and data-carrying variants become
//! single-key objects (externally tagged).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.serialize_impl()
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.deserialize_impl()
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

/// Field layout of a struct or enum variant.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// The parsed derive target.
struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

impl Item {
    fn parse(input: TokenStream) -> Item {
        let mut toks = input.into_iter().peekable();
        skip_attrs_and_vis(&mut toks);
        let kw = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
        };
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected type name, got {other:?}"),
        };
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            panic!("serde_derive: generic types are not supported (deriving on `{name}`)");
        }
        let kind = match kw.as_str() {
            "struct" => Kind::Struct(parse_struct_fields(&mut toks, &name)),
            "enum" => Kind::Enum(parse_variants(&mut toks, &name)),
            other => panic!("serde_derive: cannot derive on `{other}`"),
        };
        Item { name, kind }
    }

    fn serialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.kind {
            Kind::Struct(fields) => match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Named(names) => object_expr(
                    names
                        .iter()
                        .map(|f| (f.clone(), format!("&self.{f}")))
                        .collect(),
                ),
            },
            Kind::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|(vname, fields)| match fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(x0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {payload})]),",
                                binds = binds.join(", ")
                            )
                        }
                        Fields::Named(fnames) => {
                            let payload = object_expr(
                                fnames.iter().map(|f| (f.clone(), f.clone())).collect(),
                            );
                            format!(
                                "{name}::{vname} {{ {fields} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {payload})]),",
                                fields = fnames.join(", ")
                            )
                        }
                    })
                    .collect();
                format!("match self {{ {} }}", arms.join("\n"))
            }
        };
        format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
             }}"
        )
    }

    fn deserialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.kind {
            Kind::Struct(fields) => match fields {
                Fields::Unit => format!(
                    "if v.is_null() {{ Ok({name}) }} else {{ \
                     Err(::serde::Error::msg(\"expected null for unit struct {name}\")) }}"
                ),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "match v {{\n\
                             ::serde::Value::Array(items) if items.len() == {n} => \
                                 Ok({name}({items})),\n\
                             other => Err(::serde::Error::msg(format!(\
                                 \"expected {n}-element array for {name}, got {{other:?}}\"))),\n\
                         }}",
                        items = items.join(", ")
                    )
                }
                Fields::Named(names) => {
                    format!(
                        "if !v.is_object() {{ return Err(::serde::Error::msg(format!(\
                             \"expected object for {name}, got {{v:?}}\"))); }}\n\
                         Ok({name} {{ {fields} }})",
                        fields = named_field_parsers(names).join(", ")
                    )
                }
            },
            Kind::Enum(variants) => {
                let unit_arms: Vec<String> = variants
                    .iter()
                    .filter(|(_, f)| matches!(f, Fields::Unit))
                    .map(|(vname, _)| format!("\"{vname}\" => Ok({name}::{vname}),"))
                    .collect();
                let data_arms: Vec<String> = variants
                    .iter()
                    .filter_map(|(vname, fields)| match fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(payload)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => match payload {{\n\
                                     ::serde::Value::Array(items) if items.len() == {n} => \
                                         Ok({name}::{vname}({items})),\n\
                                     other => Err(::serde::Error::msg(format!(\
                                         \"expected {n}-element array for {name}::{vname}, \
                                          got {{other:?}}\"))),\n\
                                 }},",
                                items = items.join(", ")
                            ))
                        }
                        Fields::Named(fnames) => {
                            let fields = named_field_parsers(fnames)
                                .join(", ")
                                .replace("v.field", "payload.field");
                            Some(format!(
                                "\"{vname}\" => Ok({name}::{vname} {{ {fields} }}),"
                            ))
                        }
                    })
                    .collect();
                format!(
                    "match v {{\n\
                         ::serde::Value::Str(s) => match s.as_str() {{\n\
                             {unit_arms}\n\
                             other => Err(::serde::Error::msg(format!(\
                                 \"unknown {name} variant {{other:?}}\"))),\n\
                         }},\n\
                         ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                             let (tag, payload) = &pairs[0];\n\
                             let _ = payload;\n\
                             match tag.as_str() {{\n\
                                 {data_arms}\n\
                                 other => Err(::serde::Error::msg(format!(\
                                     \"unknown {name} variant {{other:?}}\"))),\n\
                             }}\n\
                         }}\n\
                         other => Err(::serde::Error::msg(format!(\
                             \"expected {name} variant, got {{other:?}}\"))),\n\
                     }}",
                    unit_arms = unit_arms.join("\n"),
                    data_arms = data_arms.join("\n"),
                )
            }
        };
        format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                     ::std::result::Result<{name}, ::serde::Error> {{ {body} }}\n\
             }}"
        )
    }
}

/// `Value::Object(vec![("name", to_value(expr)), ...])`.
fn object_expr(fields: Vec<(String, String)>) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|(f, expr)| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({expr}))"))
        .collect();
    format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
}

/// `name: Deserialize::from_value(v.field("name"))?` per field.
fn named_field_parsers(names: &[String]) -> Vec<String> {
    names
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\"))?"))
        .collect()
}

type Peekable = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips outer attributes (`#[...]`, including rendered doc comments)
/// and a `pub` / `pub(...)` visibility prefix.
fn skip_attrs_and_vis(toks: &mut Peekable) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde_derive: malformed attribute, got {other:?}"),
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    toks.next();
                }
            }
            _ => return,
        }
    }
}

fn parse_struct_fields(toks: &mut Peekable, name: &str) -> Fields {
    match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!("serde_derive: malformed struct `{name}` body: {other:?}"),
    }
}

/// Field names of a `{ ... }` field list.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut toks = stream.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        match toks.next() {
            None => return names,
            Some(TokenTree::Ident(field)) => {
                names.push(field.to_string());
                match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("serde_derive: expected `:` after field, got {other:?}"),
                }
                skip_type_until_comma(&mut toks);
            }
            other => panic!("serde_derive: expected field name, got {other:?}"),
        }
    }
}

/// Consumes a type, stopping after the `,` that terminates it (or at
/// end of stream). Tracks `<...>` nesting so commas inside generic
/// arguments don't split fields.
fn skip_type_until_comma(toks: &mut Peekable) {
    let mut angle_depth = 0usize;
    for tok in toks.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Arity of a `( ... )` field list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut count = 0usize;
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            return count;
        }
        count += 1;
        skip_type_until_comma(&mut toks);
    }
}

fn parse_variants(toks: &mut Peekable, name: &str) -> Vec<(String, Fields)> {
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde_derive: malformed enum `{name}` body: {other:?}"),
    };
    let mut toks = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let vname = match toks.next() {
            None => return variants,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected variant name in `{name}`, got {other:?}"),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                toks.next();
                Fields::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                toks.next();
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        // Consume up to and including the trailing comma (skipping any
        // explicit discriminant, which this workspace doesn't use).
        skip_type_until_comma(&mut toks);
        variants.push((vname, fields));
    }
}
