#![warn(missing_docs)]

//! # serde_json — in-repo stand-in
//!
//! Thin functional façade over the in-repo `serde` stand-in's
//! [`Value`] model, exposing the call surface this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`] and
//! [`from_value`]. See `crates/serde` for why these exist.

pub use serde::value::parse;
pub use serde::{Error, Value};

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Infallible for this implementation; the `Result` mirrors the real
/// crate's signature so call sites (`?`, `.expect`) read identically.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_compact())
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
/// Infallible; see [`to_string`].
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_pretty())
}

/// Parses `T` out of a JSON string.
///
/// # Errors
/// Returns the first syntax or shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
/// Infallible; see [`to_string`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds `T` from a [`Value`] tree.
///
/// # Errors
/// Returns the first shape mismatch.
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_of_numbers_round_trips() {
        let xs = vec![1u64, 2, 3];
        let json = to_string(&xs).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn value_round_trips_through_from_str() {
        let v: Value = from_str(r#"{"a": 1}"#).unwrap();
        assert_eq!(v["a"].as_u64(), Some(1));
    }

    #[test]
    fn options_map_to_null() {
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(to_string(&Some(5u32)).unwrap(), "5");
        let none: Option<u32> = from_str("null").unwrap();
        assert_eq!(none, None);
    }
}
