//! Engineering units used throughout the PDK and every downstream crate.
//!
//! The three printed/silicon technologies in the paper span nine orders of
//! magnitude in delay (EGT milliseconds, CNT-TFT microseconds, TSMC-40nm
//! nanoseconds) and area (cm², mm², µm²). To keep arithmetic honest we use
//! newtypes with fixed canonical units:
//!
//! * [`Area`] — square millimetres (mm²)
//! * [`Power`] — milliwatts (mW)
//! * [`Delay`] — seconds (s)
//! * [`Energy`] — millijoules (mJ)
//!
//! All are `Copy` wrappers over `f64` with arithmetic operators and
//! engineering-notation `Display` implementations.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $ctor:ident, $canon:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// The zero value.
            pub const ZERO: $name = $name(0.0);

            /// Creates a value from the canonical unit.
            #[doc = concat!("Canonical unit: ", $canon, ".")]
            pub fn $ctor(value: f64) -> Self {
                Self(value)
            }

            /// Returns the value in the canonical unit.
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the larger of two values.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of two values.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Dimensionless ratio `self / other`.
            ///
            /// # Panics
            /// Does not panic; division by zero yields `inf`/`NaN` per IEEE-754.
            pub fn ratio(self, other: Self) -> f64 {
                self.0 / other.0
            }

            /// True when the value is exactly zero.
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

unit!(
    /// Silicon or printed-circuit area, canonically in mm².
    ///
    /// ```
    /// use pdk::units::Area;
    /// let a = Area::from_mm2(150.0);
    /// assert_eq!(a.as_cm2(), 1.5);
    /// ```
    Area,
    from_mm2,
    "mm²"
);

unit!(
    /// Static power draw, canonically in mW.
    ///
    /// ```
    /// use pdk::units::Power;
    /// let p = Power::from_uw(610.0);
    /// assert!((p.as_mw() - 0.61).abs() < 1e-12);
    /// ```
    Power,
    from_mw,
    "mW"
);

unit!(
    /// Propagation delay or latency, canonically in seconds.
    ///
    /// ```
    /// use pdk::units::Delay;
    /// let d = Delay::from_ms(11.2);
    /// assert!((d.as_us() - 11_200.0).abs() < 1e-6);
    /// ```
    Delay,
    from_secs,
    "s"
);

unit!(
    /// Energy, canonically in mJ.
    ///
    /// ```
    /// use pdk::units::{Delay, Power};
    /// let e = Power::from_mw(2.0) * Delay::from_ms(3.0);
    /// assert!((e.as_mj() - 0.006).abs() < 1e-12);
    /// ```
    Energy,
    from_mj,
    "mJ"
);

impl Area {
    /// Creates an area from cm².
    pub fn from_cm2(cm2: f64) -> Self {
        Self(cm2 * 100.0)
    }

    /// Creates an area from µm².
    pub fn from_um2(um2: f64) -> Self {
        Self(um2 * 1e-6)
    }

    /// Returns the area in cm².
    pub fn as_cm2(self) -> f64 {
        self.0 / 100.0
    }

    /// Returns the area in mm².
    pub fn as_mm2(self) -> f64 {
        self.0
    }

    /// Returns the area in µm².
    pub fn as_um2(self) -> f64 {
        self.0 * 1e6
    }
}

impl Power {
    /// Creates a power from µW.
    pub fn from_uw(uw: f64) -> Self {
        Self(uw * 1e-3)
    }

    /// Creates a power from W.
    pub fn from_w(w: f64) -> Self {
        Self(w * 1e3)
    }

    /// Returns the power in mW.
    pub fn as_mw(self) -> f64 {
        self.0
    }

    /// Returns the power in µW.
    pub fn as_uw(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the power in W.
    pub fn as_w(self) -> f64 {
        self.0 * 1e-3
    }
}

impl Delay {
    /// Creates a delay from milliseconds.
    pub fn from_ms(ms: f64) -> Self {
        Self(ms * 1e-3)
    }

    /// Creates a delay from microseconds.
    pub fn from_us(us: f64) -> Self {
        Self(us * 1e-6)
    }

    /// Creates a delay from nanoseconds.
    pub fn from_ns(ns: f64) -> Self {
        Self(ns * 1e-9)
    }

    /// Returns the delay in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the delay in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the delay in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the delay in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 * 1e9
    }
}

impl Energy {
    /// Returns the energy in mJ.
    pub fn as_mj(self) -> f64 {
        self.0
    }

    /// Returns the energy in µJ.
    pub fn as_uj(self) -> f64 {
        self.0 * 1e3
    }
}

impl Mul<Delay> for Power {
    type Output = Energy;
    /// Power × time = energy (mW × s = mJ).
    fn mul(self, rhs: Delay) -> Energy {
        Energy(self.0 * rhs.0)
    }
}

/// Formats `value` with an SI prefix chosen so the mantissa is in `[1, 1000)`.
fn engineering(value: f64, unit: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if value == 0.0 {
        return write!(f, "0 {unit}");
    }
    let prefixes: [(f64, &str); 7] = [
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "µ"),
        (1e-9, "n"),
    ];
    let magnitude = value.abs();
    for (scale, prefix) in prefixes {
        if magnitude >= scale {
            return write!(f, "{:.3} {}{}", value / scale, prefix, unit);
        }
    }
    write!(f, "{:.3e} {}", value, unit)
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Area scales quadratically, so SI prefixes are misleading: print the
        // most readable of µm² / mm² / cm².
        let mm2 = self.0;
        if mm2 == 0.0 {
            write!(f, "0 mm²")
        } else if mm2.abs() >= 100.0 {
            write!(f, "{:.3} cm²", self.as_cm2())
        } else if mm2.abs() >= 0.01 {
            write!(f, "{:.3} mm²", mm2)
        } else {
            write!(f, "{:.1} µm²", self.as_um2())
        }
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        engineering(self.as_w(), "W", f)
    }
}

impl fmt::Display for Delay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        engineering(self.0, "s", f)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        engineering(self.0 * 1e-3, "J", f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_conversions_round_trip() {
        let a = Area::from_cm2(1.5);
        assert!((a.as_mm2() - 150.0).abs() < 1e-12);
        assert!((a.as_um2() - 150.0e6).abs() < 1e-3);
        assert!((Area::from_um2(94.0).as_um2() - 94.0).abs() < 1e-9);
    }

    #[test]
    fn power_conversions_round_trip() {
        let p = Power::from_w(0.61e-3);
        assert!((p.as_mw() - 0.61).abs() < 1e-12);
        assert!((p.as_uw() - 610.0).abs() < 1e-9);
    }

    #[test]
    fn delay_conversions_round_trip() {
        assert!((Delay::from_ms(27.0).as_secs() - 0.027).abs() < 1e-15);
        assert!((Delay::from_us(9.5).as_ns() - 9_500.0).abs() < 1e-9);
        assert!((Delay::from_ns(0.23).as_secs() - 0.23e-9).abs() < 1e-24);
    }

    #[test]
    fn arithmetic_ops_behave() {
        let a = Area::from_mm2(2.0) + Area::from_mm2(3.0);
        assert_eq!(a, Area::from_mm2(5.0));
        let p = Power::from_mw(4.0) - Power::from_mw(1.0);
        assert_eq!(p, Power::from_mw(3.0));
        let d = Delay::from_ms(2.0) * 3.0;
        assert_eq!(d, Delay::from_ms(6.0));
        let s: Area = vec![Area::from_mm2(1.0); 4].into_iter().sum();
        assert_eq!(s, Area::from_mm2(4.0));
    }

    #[test]
    fn energy_is_power_times_delay() {
        let e = Power::from_mw(10.0) * Delay::from_ms(100.0);
        assert!((e.as_mj() - 1.0).abs() < 1e-12);
        assert!((e.as_uj() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_is_dimensionless() {
        assert!((Area::from_mm2(10.0).ratio(Area::from_mm2(2.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_uses_engineering_notation() {
        assert_eq!(format!("{}", Delay::from_ms(11.2)), "11.200 ms");
        // 0.23 ns is below the smallest prefix in our table: scientific fallback.
        assert!(format!("{}", Delay::from_ns(0.23)).contains("e-10"));
        let s = format!("{}", Power::from_uw(610.0));
        assert_eq!(s, "610.000 µW");
        assert_eq!(format!("{}", Area::from_cm2(1.5)), "1.500 cm²");
        assert_eq!(format!("{}", Area::from_um2(94.0)), "94.0 µm²");
        assert_eq!(format!("{}", Power::ZERO), "0 W");
    }

    #[test]
    fn min_max_zero() {
        assert_eq!(
            Delay::from_ms(1.0).max(Delay::from_ms(2.0)),
            Delay::from_ms(2.0)
        );
        assert_eq!(
            Delay::from_ms(1.0).min(Delay::from_ms(2.0)),
            Delay::from_ms(1.0)
        );
        assert!(Area::ZERO.is_zero());
        assert!(!Area::from_mm2(1.0).is_zero());
    }
}
