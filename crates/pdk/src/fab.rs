//! Fabrication economics: yield, marginal cost, and the NRE asymmetry
//! that makes bespoke printing viable.
//!
//! §IV: "both NRE costs and per unit-area fabrication costs in printed
//! technology are low, even sub-cent, especially for additive and
//! mask-less technologies such as inkjet printing … Such degree of
//! customization is mostly infeasible in lithography-based silicon
//! technologies, especially at low to moderate volumes, due to high NRE
//! costs." And §III: "high area of the serial trees has direct impact on
//! yield, bill of materials (BOM), and fabrication throughput."
//!
//! The model: Poisson defect yield `Y = exp(−D₀·A)`, a per-area marginal
//! print/wafer cost, and a one-time NRE amortized over the production
//! volume. Anchors: the paper's Fujifilm Dimatix 2850 printer costs
//! ~50 000 USD and reaches sub-cent marginal cost per circuit; "even older
//! silicon foundries may cost hundreds of millions of dollars" and a
//! mask set runs to ~1 M USD at 40 nm.

use serde::Serialize;

use crate::tech::Technology;
use crate::units::Area;

/// Fabrication cost parameters of one technology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FabModel {
    /// Defect density in defects per cm² (printed layers are dirty).
    pub defect_density_per_cm2: f64,
    /// Marginal cost per cm² of printed/processed area, in USD.
    pub cost_per_cm2_usd: f64,
    /// One-time engineering cost per *design* (mask set, tooling), USD.
    pub nre_usd: f64,
}

impl FabModel {
    /// Cost model for `technology`.
    pub fn for_technology(technology: Technology) -> Self {
        match technology {
            // Inkjet EGT: mask-less — the NRE of a new design is just a
            // CAD file. Ink + substrate land at sub-cent per cm².
            Technology::Egt => FabModel {
                defect_density_per_cm2: 0.05,
                cost_per_cm2_usd: 0.004,
                nre_usd: 0.0,
            },
            // Subtractive CNT-TFT: photoresist + etch steps need plates
            // and alignment — small but non-zero NRE, pricier area.
            Technology::CntTft => FabModel {
                defect_density_per_cm2: 0.02,
                cost_per_cm2_usd: 0.03,
                nre_usd: 5_000.0,
            },
            // 40 nm CMOS: pennies per mm² of wafer at volume, but a mask
            // set in the million-dollar class.
            Technology::Tsmc40 => FabModel {
                defect_density_per_cm2: 0.002,
                cost_per_cm2_usd: 10.0,
                nre_usd: 1_000_000.0,
            },
        }
    }

    /// Poisson yield of a die of the given area: `exp(−D₀·A)`.
    pub fn yield_of(&self, area: Area) -> f64 {
        (-self.defect_density_per_cm2 * area.as_cm2()).exp()
    }

    /// Marginal cost of one *working* unit (materials divided by yield).
    pub fn marginal_cost_usd(&self, area: Area) -> f64 {
        self.cost_per_cm2_usd * area.as_cm2() / self.yield_of(area)
    }

    /// All-in unit cost at a production volume: marginal + NRE/volume.
    ///
    /// # Panics
    /// Panics if `volume` is zero.
    pub fn unit_cost_usd(&self, area: Area, volume: u64) -> f64 {
        assert!(volume > 0, "volume must be positive");
        self.marginal_cost_usd(area) + self.nre_usd / volume as f64
    }

    /// The smallest volume at which this technology's unit cost drops
    /// under `budget_usd` for a design of `area`, if any volume does.
    pub fn break_even_volume(&self, area: Area, budget_usd: f64) -> Option<u64> {
        let marginal = self.marginal_cost_usd(area);
        if marginal >= budget_usd {
            return None;
        }
        if self.nre_usd == 0.0 {
            return Some(1);
        }
        Some((self.nre_usd / (budget_usd - marginal)).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn egt_tags_are_sub_cent_at_volume_one() {
        // §IV: sub-cent marginal cost per printed circuit, zero NRE — a
        // one-off bespoke classifier is economical.
        let fab = FabModel::for_technology(Technology::Egt);
        let tag = Area::from_cm2(1.0); // a bespoke tree incl. margins
        assert!(
            fab.unit_cost_usd(tag, 1) < 0.01,
            "{}",
            fab.unit_cost_usd(tag, 1)
        );
        assert_eq!(fab.break_even_volume(tag, 0.01), Some(1));
    }

    #[test]
    fn silicon_needs_large_volumes_to_amortize_masks() {
        // §IV: per-model silicon customization is infeasible at low to
        // moderate volume.
        let fab = FabModel::for_technology(Technology::Tsmc40);
        let die = Area::from_um2(500.0); // a silicon bespoke tree is tiny
        let volume = fab
            .break_even_volume(die, 0.01)
            .expect("possible at some volume");
        assert!(volume > 10_000_000, "breaks even at {volume}");
        // A bespoke run of 10k units costs ~100 USD each: absurd for a
        // milk carton.
        assert!(fab.unit_cost_usd(die, 10_000) > 50.0);
    }

    #[test]
    fn yield_decays_with_area() {
        let fab = FabModel::for_technology(Technology::Egt);
        let small = fab.yield_of(Area::from_cm2(1.0));
        let large = fab.yield_of(Area::from_cm2(20.0));
        assert!(small > large);
        assert!(small > 0.9);
        assert!(large < 0.5);
        // Zero area yields perfectly.
        assert_eq!(fab.yield_of(Area::ZERO), 1.0);
    }

    #[test]
    fn marginal_cost_grows_superlinearly_for_big_dies() {
        // §III: "high area of the serial trees has direct impact on yield
        // [and] bill of materials" — a 2x area costs more than 2x.
        let fab = FabModel::for_technology(Technology::Egt);
        let a = fab.marginal_cost_usd(Area::from_cm2(10.0));
        let b = fab.marginal_cost_usd(Area::from_cm2(20.0));
        assert!(b > 2.0 * a);
    }

    #[test]
    fn infeasible_budgets_return_none() {
        let fab = FabModel::for_technology(Technology::Tsmc40);
        assert!(fab.break_even_volume(Area::from_cm2(1.0), 0.001).is_none());
    }
}
