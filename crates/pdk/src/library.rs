//! Technology-calibrated standard-cell libraries.
//!
//! The real EGT and CNT-TFT PDKs (Bleier et al., ISCA 2020 — reference \[10\]
//! of the paper) are not redistributable, so these libraries are calibrated
//! to every concrete number the MICRO paper itself publishes:
//!
//! * EGT inverter: 0.22 mm², 9.6 µW (§V);
//! * EGT 1-bit crossbar ROM cell: 0.05 mm², 3.13 µW, delay within 1.5× of
//!   an inverter (§V);
//! * CNT-TFT inverter: 0.002 mm², 8.08 µW; CNT ROM bit 0.05 mm², 2.77 µW
//!   (§V-A) — i.e. CNT ROM bits are *cheaper in power but 25× larger* than
//!   logic, which is why lookup-based CNT trees save power but explode in
//!   area (69×);
//! * D flip-flop: 1.41 mm² / 121 µW (EGT), 0.018 mm² / 77 µW (CNT-TFT),
//!   3.99 µm² / 4.7 µW (TSMC 40 nm) (§IV-B);
//! * silicon mask-ROM bits: ~900× slower and ~1200× more power-hungry than
//!   an inverter (§V, citing \[79\]);
//! * Table I component-level PPA for an 8-bit comparator, 8-bit MAC and
//!   ReLU in all three technologies (reproduced by `crates/bench` bin
//!   `table1` and asserted within tolerance by this crate's tests).

use serde::{Deserialize, Serialize};

use crate::cell::CellKind;
use crate::tech::Technology;
use crate::units::{Area, Delay, Power};

/// Fully-priced standard cell: the PPA of one cell instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellCost {
    /// Placed-and-routed footprint.
    pub area: Area,
    /// Worst-case input-to-output propagation delay
    /// (clock-to-Q for the flip-flop).
    pub delay: Delay,
    /// Static power draw. Printed technologies are static-dominated; for the
    /// silicon library this is an activity-weighted total matching Table I.
    pub power: Power,
}

/// A standard-cell library for one [`Technology`].
///
/// ```
/// use pdk::{CellKind, CellLibrary, Technology};
/// let lib = CellLibrary::for_technology(Technology::Egt);
/// let inv = lib.cost(CellKind::Inv);
/// assert!((inv.area.as_mm2() - 0.22).abs() < 1e-9);
/// assert!((inv.power.as_uw() - 9.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    technology: Technology,
    inv_area: Area,
    inv_power: Power,
    unit_delay: Delay,
    dff: CellCost,
    rom_bit: CellCost,
    rom_dot: CellCost,
}

impl CellLibrary {
    /// Builds the calibrated library for `technology`.
    pub fn for_technology(technology: Technology) -> Self {
        match technology {
            Technology::Egt => CellLibrary {
                technology,
                // §V: one-input inverter 0.22 mm², 9.6 µW.
                inv_area: Area::from_mm2(0.22),
                inv_power: Power::from_uw(9.6),
                // Calibrated so an 8-bit ripple comparator lands on Table I's
                // 11.2 ms and an 8-bit MAC on 27 ms.
                unit_delay: Delay::from_ms(0.42),
                // §IV-B: EGT DFF is 1.41 mm² and 121 µW.
                dff: CellCost {
                    area: Area::from_mm2(1.41),
                    delay: Delay::from_ms(0.42 * 3.0),
                    power: Power::from_uw(121.0),
                },
                // §V: 1-bit EGT ROM 0.05 mm², 3.13 µW, ≤1.5× inverter delay.
                rom_bit: CellCost {
                    area: Area::from_mm2(0.05),
                    delay: Delay::from_ms(0.42 * 1.5),
                    power: Power::from_uw(3.13),
                },
                // §V-A: a bespoke set bit is a bare printed PEDOT dot —
                // an order of magnitude below the addressable crossbar
                // cell — and a clear bit is simply not printed.
                rom_dot: CellCost {
                    area: Area::from_mm2(0.004),
                    delay: Delay::from_ms(0.42 * 1.5),
                    power: Power::from_uw(1.2),
                },
            },
            Technology::CntTft => CellLibrary {
                technology,
                // §V-A: CNT inverter 0.002 mm². Logic power is calibrated to
                // Table I (CNT logic is far leakier per gate than its
                // quoted minimum-size inverter; an 8-bit comparator draws
                // 8.32 mW).
                inv_area: Area::from_mm2(0.002),
                inv_power: Power::from_uw(120.0),
                unit_delay: Delay::from_us(0.36),
                // §IV-B: CNT DFF is 0.018 mm² and 77 µW.
                dff: CellCost {
                    area: Area::from_mm2(0.018),
                    delay: Delay::from_us(0.36 * 3.0),
                    power: Power::from_uw(77.0),
                },
                // §V-A: CNT ROM bit 0.05 mm², 2.77 µW — larger than logic,
                // cheaper in power.
                rom_bit: CellCost {
                    area: Area::from_mm2(0.05),
                    delay: Delay::from_us(0.36 * 1.5),
                    power: Power::from_uw(2.77),
                },
                // Subtractively-patterned CNT dots are less of a win than
                // inkjet EGT dots, but still below the full cell.
                rom_dot: CellCost {
                    area: Area::from_mm2(0.01),
                    delay: Delay::from_us(0.36 * 1.5),
                    power: Power::from_uw(1.0),
                },
            },
            Technology::Tsmc40 => CellLibrary {
                technology,
                // Typical 40 nm inverter footprint; power calibrated to
                // Table I's activity-weighted component totals.
                inv_area: Area::from_um2(1.6),
                inv_power: Power::from_uw(2.2),
                unit_delay: Delay::from_ns(0.0085),
                // §IV-B: TSMC 40 nm DFF is 3.99 µm² and 4.7 µW.
                dff: CellCost {
                    area: Area::from_um2(3.99),
                    delay: Delay::from_ns(0.0085 * 3.0),
                    power: Power::from_uw(4.7),
                },
                // §V (citing [79]): silicon mask-ROM bit ~900× slower and
                // ~1200× the power of an inverter, tiny in area.
                rom_bit: CellCost {
                    area: Area::from_um2(0.05),
                    delay: Delay::from_ns(0.0085 * 900.0),
                    power: Power::from_uw(2.2 * 1200.0 / 1000.0),
                },
                // Silicon has no printable-dot option: a "dot" is just a
                // mask-ROM contact, same cell either way.
                rom_dot: CellCost {
                    area: Area::from_um2(0.05),
                    delay: Delay::from_ns(0.0085 * 900.0),
                    power: Power::from_uw(2.2 * 1200.0 / 1000.0),
                },
            },
        }
    }

    /// The technology this library prices.
    pub fn technology(&self) -> Technology {
        self.technology
    }

    /// The unit (inverter) gate delay the library is calibrated around.
    pub fn unit_delay(&self) -> Delay {
        self.unit_delay
    }

    /// Full PPA of one `kind` cell instance.
    pub fn cost(&self, kind: CellKind) -> CellCost {
        match kind {
            CellKind::Dff => self.dff,
            CellKind::RomBit => self.rom_bit,
            CellKind::RomDot => self.rom_dot,
            _ => CellCost {
                area: self.inv_area * kind.area_factor(),
                delay: self.unit_delay * kind.delay_factor(),
                power: self.inv_power * kind.power_factor(),
            },
        }
    }

    /// Area of one `kind` instance.
    pub fn area(&self, kind: CellKind) -> Area {
        self.cost(kind).area
    }

    /// Delay of one `kind` instance.
    pub fn delay(&self, kind: CellKind) -> Delay {
        self.cost(kind).delay
    }

    /// Static power of one `kind` instance.
    pub fn power(&self, kind: CellKind) -> Power {
        self.cost(kind).power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(t: Technology) -> CellLibrary {
        CellLibrary::for_technology(t)
    }

    #[test]
    fn egt_anchors_match_paper_quotes() {
        let l = lib(Technology::Egt);
        assert!((l.area(CellKind::Inv).as_mm2() - 0.22).abs() < 1e-12);
        assert!((l.power(CellKind::Inv).as_uw() - 9.6).abs() < 1e-12);
        assert!((l.area(CellKind::RomBit).as_mm2() - 0.05).abs() < 1e-12);
        assert!((l.power(CellKind::RomBit).as_uw() - 3.13).abs() < 1e-12);
        assert!((l.area(CellKind::Dff).as_mm2() - 1.41).abs() < 1e-12);
        assert!((l.power(CellKind::Dff).as_uw() - 121.0).abs() < 1e-12);
    }

    #[test]
    fn cnt_anchors_match_paper_quotes() {
        let l = lib(Technology::CntTft);
        assert!((l.area(CellKind::Inv).as_mm2() - 0.002).abs() < 1e-12);
        assert!((l.area(CellKind::RomBit).as_mm2() - 0.05).abs() < 1e-12);
        assert!((l.power(CellKind::RomBit).as_uw() - 2.77).abs() < 1e-12);
        assert!((l.area(CellKind::Dff).as_mm2() - 0.018).abs() < 1e-12);
    }

    #[test]
    fn tsmc_dff_matches_paper_quote() {
        let l = lib(Technology::Tsmc40);
        assert!((l.area(CellKind::Dff).as_um2() - 3.99).abs() < 1e-9);
        assert!((l.power(CellKind::Dff).as_uw() - 4.7).abs() < 1e-12);
    }

    #[test]
    fn egt_rom_bit_is_cheaper_than_logic_cnt_is_larger() {
        // §V: the economics that enable lookup-based EGT classifiers.
        let egt = lib(Technology::Egt);
        assert!(egt.area(CellKind::RomBit) < egt.area(CellKind::Inv));
        assert!(egt.power(CellKind::RomBit) < egt.power(CellKind::Inv));
        // §V-A: CNT ROM bits are larger than logic but cheaper in power.
        let cnt = lib(Technology::CntTft);
        assert!(cnt.area(CellKind::RomBit) > cnt.area(CellKind::Inv));
        assert!(cnt.power(CellKind::RomBit) < cnt.power(CellKind::Inv));
    }

    #[test]
    fn egt_rom_reads_fast_silicon_rom_reads_slow() {
        let egt = lib(Technology::Egt);
        assert!(egt.delay(CellKind::RomBit).ratio(egt.delay(CellKind::Inv)) <= 1.5 + 1e-9);
        let si = lib(Technology::Tsmc40);
        assert!(si.delay(CellKind::RomBit).ratio(si.delay(CellKind::Inv)) > 100.0);
    }

    #[test]
    fn technologies_are_ordered_in_cost() {
        // EGT ≫ CNT ≫ silicon in both area and delay for plain logic.
        let egt = lib(Technology::Egt);
        let cnt = lib(Technology::CntTft);
        let si = lib(Technology::Tsmc40);
        assert!(egt.area(CellKind::Nand2) > cnt.area(CellKind::Nand2));
        assert!(cnt.area(CellKind::Nand2) > si.area(CellKind::Nand2));
        assert!(egt.delay(CellKind::Nand2) > cnt.delay(CellKind::Nand2));
        assert!(cnt.delay(CellKind::Nand2) > si.delay(CellKind::Nand2));
    }

    #[test]
    fn all_cells_have_positive_cost_in_all_technologies() {
        for tech in Technology::ALL {
            let l = lib(tech);
            for kind in CellKind::ALL {
                let c = l.cost(kind);
                assert!(c.area.as_mm2() > 0.0, "{tech} {kind}");
                assert!(c.delay.as_secs() > 0.0, "{tech} {kind}");
                assert!(c.power.as_mw() > 0.0, "{tech} {kind}");
            }
        }
    }
}

impl CellLibrary {
    /// A derated copy of the library for harsh deployment conditions.
    ///
    /// §VII: EGTs bend reliably to a 10 mm radius with <10 % change in
    /// electrical characteristics; humidity and dirt are handled by a
    /// passivation layer. Derating multiplies every cell's delay and
    /// power by the given factors (≥ 1) so designs can be signed off at
    /// the bent/hot corner rather than nominal.
    ///
    /// # Panics
    /// Panics if either factor is below 1 (derating never improves).
    pub fn derated(&self, delay_factor: f64, power_factor: f64) -> CellLibrary {
        assert!(
            delay_factor >= 1.0 && power_factor >= 1.0,
            "derating factors must be >= 1"
        );
        let scale = |c: CellCost| CellCost {
            area: c.area,
            delay: c.delay * delay_factor,
            power: c.power * power_factor,
        };
        CellLibrary {
            technology: self.technology,
            inv_area: self.inv_area,
            inv_power: self.inv_power * power_factor,
            unit_delay: self.unit_delay * delay_factor,
            dff: scale(self.dff),
            rom_bit: scale(self.rom_bit),
            rom_dot: scale(self.rom_dot),
        }
    }

    /// The §VII bent-to-10-mm-radius corner: 10 % slower, 10 % hungrier.
    pub fn bent_corner(&self) -> CellLibrary {
        self.derated(1.1, 1.1)
    }
}

#[cfg(test)]
mod derate_tests {
    use super::*;
    use crate::cell::CellKind;

    #[test]
    fn derating_scales_delay_and_power_not_area() {
        let nominal = CellLibrary::for_technology(Technology::Egt);
        let bent = nominal.bent_corner();
        for kind in CellKind::ALL {
            let n = nominal.cost(kind);
            let d = bent.cost(kind);
            assert_eq!(n.area, d.area, "{kind}");
            assert!((d.delay.ratio(n.delay) - 1.1).abs() < 1e-9, "{kind}");
            assert!((d.power.ratio(n.power) - 1.1).abs() < 1e-9, "{kind}");
        }
    }

    #[test]
    #[should_panic(expected = "factors must be >= 1")]
    fn improving_derates_are_rejected() {
        CellLibrary::for_technology(Technology::Egt).derated(0.9, 1.0);
    }
}
