//! The three fabrication technologies evaluated in the paper.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A fabrication technology with a process design kit in this crate.
///
/// The paper evaluates each classifier architecture in two printed
/// technologies and one silicon reference:
///
/// * [`Technology::Egt`] — inkjet-printed electrolyte-gated transistors
///   (additive, mask-less, sub-cent marginal cost, ~1 V supply, millisecond
///   gate delays, mm-scale features).
/// * [`Technology::CntTft`] — subtractively printed carbon-nanotube
///   thin-film transistors (finer features than EGT, microsecond delays,
///   but higher equipment cost and higher power).
/// * [`Technology::Tsmc40`] — TSMC 40 nm bulk CMOS, the silicon baseline.
///
/// ```
/// use pdk::Technology;
/// assert!(Technology::Egt.is_printed());
/// assert!(!Technology::Tsmc40.is_printed());
/// assert_eq!(Technology::ALL.len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technology {
    /// Inkjet-printed electrolyte-gated transistor technology.
    Egt,
    /// Carbon-nanotube thin-film transistor technology.
    CntTft,
    /// TSMC 40 nm silicon CMOS (reference point).
    Tsmc40,
}

impl Technology {
    /// All technologies, in the order the paper's tables list them.
    pub const ALL: [Technology; 3] = [Technology::Egt, Technology::CntTft, Technology::Tsmc40];

    /// The printed technologies only (EGT and CNT-TFT).
    pub const PRINTED: [Technology; 2] = [Technology::Egt, Technology::CntTft];

    /// True for additively or subtractively printed technologies.
    pub fn is_printed(self) -> bool {
        !matches!(self, Technology::Tsmc40)
    }

    /// Nominal supply voltage in volts.
    ///
    /// EGT operates at ~1 V, which is what makes battery- and self-powered
    /// printed classifiers plausible; CNT-TFT PDKs are characterized around
    /// 3 V and the 40 nm silicon library at 0.9 V.
    pub fn supply_voltage(self) -> f64 {
        match self {
            Technology::Egt => 1.0,
            Technology::CntTft => 3.0,
            Technology::Tsmc40 => 0.9,
        }
    }

    /// Characteristic drawn feature size in micrometres.
    ///
    /// Printed features are measured in tens of µm (low-resolution, low-cost
    /// printing); silicon in tens of nm. This 3-orders-of-magnitude gap is
    /// the root cause of every area/power conclusion in the paper.
    pub fn feature_size_um(self) -> f64 {
        match self {
            Technology::Egt => 40.0,
            Technology::CntTft => 5.0,
            Technology::Tsmc40 => 0.04,
        }
    }

    /// Whether the technology supports mask-less, on-demand fabrication.
    ///
    /// This is the property that makes *bespoke* (per-model) classifier
    /// instances economically sensible: there is no mask-set NRE to amortize.
    pub fn is_maskless(self) -> bool {
        matches!(self, Technology::Egt)
    }

    /// Short display name matching the paper's table headers.
    pub fn name(self) -> &'static str {
        match self {
            Technology::Egt => "EGT",
            Technology::CntTft => "CNT-TFT",
            Technology::Tsmc40 => "TSMC40nm",
        }
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printed_flags() {
        assert!(Technology::Egt.is_printed());
        assert!(Technology::CntTft.is_printed());
        assert!(!Technology::Tsmc40.is_printed());
        assert!(Technology::PRINTED.iter().all(|t| t.is_printed()));
    }

    #[test]
    fn egt_is_the_only_maskless_flow() {
        assert!(Technology::Egt.is_maskless());
        assert!(!Technology::CntTft.is_maskless());
        assert!(!Technology::Tsmc40.is_maskless());
    }

    #[test]
    fn feature_sizes_span_three_orders_of_magnitude() {
        let egt = Technology::Egt.feature_size_um();
        let si = Technology::Tsmc40.feature_size_um();
        assert!(egt / si >= 100.0);
    }

    #[test]
    fn display_matches_paper_headers() {
        assert_eq!(Technology::Egt.to_string(), "EGT");
        assert_eq!(Technology::CntTft.to_string(), "CNT-TFT");
        assert_eq!(Technology::Tsmc40.to_string(), "TSMC40nm");
    }
}
