//! Printed power sources and the feasibility "sets" of Figures 3 and 19.
//!
//! The paper places every classifier design into the set of the *weakest*
//! printed power source able to supply its peak power draw: printed
//! piezoelectric harvesters (\[42\]), hybrid printed harvesters (\[40\]),
//! Blue Spark 10/30 mAh printed batteries (2 mA peak current, \[70\],\[71\]),
//! and Molex 90 mAh thin-film batteries (20 mA peak, ~3× the footprint,
//! \[2\]). Conventional EGT classifiers exceed all of them (Fig. 3); the
//! printing-specific architectures mostly fit (Fig. 19).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::{Area, Power};

/// A printed battery or energy harvester.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PowerSource {
    /// Marketing / paper name.
    pub name: &'static str,
    /// Maximum continuous power the source can deliver.
    pub peak_power: Power,
    /// Physical footprint of the source itself.
    pub area: Area,
    /// Energy capacity in mAh at the nominal voltage, if a battery.
    pub capacity_mah: Option<f64>,
    /// Source category.
    pub kind: SourceKind,
}

/// Battery vs harvester distinction (harvesters enable *self-powered* tags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourceKind {
    /// Printed primary battery.
    Battery,
    /// Printed or hybrid energy harvester.
    Harvester,
}

impl PowerSource {
    /// All-inkjet-printed flexible piezoelectric generator (\[42\]).
    pub fn printed_harvester() -> Self {
        PowerSource {
            name: "Printed harvester",
            peak_power: Power::from_uw(120.0),
            area: Area::from_cm2(2.0),
            capacity_mah: None,
            kind: SourceKind::Harvester,
        }
    }

    /// Hybrid printed energy-harvesting module (\[40\]).
    pub fn hybrid_harvester() -> Self {
        PowerSource {
            name: "Hybrid harvester",
            peak_power: Power::from_mw(1.0),
            area: Area::from_cm2(4.0),
            capacity_mah: None,
            kind: SourceKind::Harvester,
        }
    }

    /// Blue Spark ultra-thin 10 mAh printed battery, 2 mA peak at 1.5 V.
    pub fn blue_spark_10mah() -> Self {
        PowerSource {
            name: "Blue Spark 10mAh",
            peak_power: Power::from_mw(3.0),
            area: Area::from_cm2(20.0),
            capacity_mah: Some(10.0),
            kind: SourceKind::Battery,
        }
    }

    /// Blue Spark standard-series 30 mAh printed battery, 2 mA peak at 1.5 V.
    pub fn blue_spark_30mah() -> Self {
        PowerSource {
            name: "Blue Spark 30mAh",
            peak_power: Power::from_mw(3.0),
            area: Area::from_cm2(25.0),
            capacity_mah: Some(30.0),
            kind: SourceKind::Battery,
        }
    }

    /// Molex 90 mAh thin-film battery, 20 mA peak at 1.5 V, ~3× Blue Spark's
    /// footprint.
    pub fn molex_90mah() -> Self {
        PowerSource {
            name: "Molex 90mAh",
            peak_power: Power::from_mw(30.0),
            area: Area::from_cm2(50.0),
            capacity_mah: Some(90.0),
            kind: SourceKind::Battery,
        }
    }

    /// The ladder of sources used by Figs. 3 and 19, weakest first.
    pub fn ladder() -> Vec<PowerSource> {
        vec![
            PowerSource::printed_harvester(),
            PowerSource::hybrid_harvester(),
            PowerSource::blue_spark_10mah(),
            PowerSource::blue_spark_30mah(),
            PowerSource::molex_90mah(),
        ]
    }

    /// True when this source can continuously supply `demand`.
    pub fn can_power(&self, demand: Power) -> bool {
        demand <= self.peak_power
    }

    /// Battery lifetime in hours at continuous `demand`, if this is a
    /// battery the demand fits in. Assumes a 1.5 V nominal printed cell.
    pub fn lifetime_hours(&self, demand: Power) -> Option<f64> {
        let mah = self.capacity_mah?;
        if !self.can_power(demand) || demand.is_zero() {
            return None;
        }
        let demand_ma = demand.as_mw() / 1.5;
        Some(mah / demand_ma)
    }
}

impl fmt::Display for PowerSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (peak {})", self.name, self.peak_power)
    }
}

/// The feasibility set a design lands in: the weakest source that powers it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Feasibility {
    /// Powerable; carries the weakest adequate source.
    PoweredBy(PowerSource),
    /// No printed source can power the design.
    Unpowerable,
}

impl Feasibility {
    /// Classifies a peak power demand against the standard source ladder.
    ///
    /// ```
    /// use pdk::power_src::{classify, Feasibility};
    /// use pdk::units::Power;
    /// match classify(Power::from_uw(50.0)) {
    ///     Feasibility::PoweredBy(src) => assert_eq!(src.name, "Printed harvester"),
    ///     Feasibility::Unpowerable => panic!("50 µW is harvestable"),
    /// }
    /// assert_eq!(classify(Power::from_w(1.0)), Feasibility::Unpowerable);
    /// ```
    pub fn classify(demand: Power) -> Feasibility {
        classify(demand)
    }

    /// True when some printed source can power the design.
    pub fn is_powerable(&self) -> bool {
        matches!(self, Feasibility::PoweredBy(_))
    }

    /// Name of the powering source, or `"none"`.
    pub fn source_name(&self) -> &'static str {
        match self {
            Feasibility::PoweredBy(s) => s.name,
            Feasibility::Unpowerable => "none",
        }
    }
}

/// Returns the weakest ladder source able to power `demand`.
pub fn classify(demand: Power) -> Feasibility {
    PowerSource::ladder()
        .into_iter()
        .find(|s| s.can_power(demand))
        .map(Feasibility::PoweredBy)
        .unwrap_or(Feasibility::Unpowerable)
}

impl fmt::Display for Feasibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Feasibility::PoweredBy(s) => write!(f, "powered by {}", s.name),
            Feasibility::Unpowerable => f.write_str("unpowerable by printed sources"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_sorted_weakest_first() {
        let ladder = PowerSource::ladder();
        for pair in ladder.windows(2) {
            assert!(pair[0].peak_power <= pair[1].peak_power);
        }
    }

    #[test]
    fn conventional_egt_trees_are_unpowerable() {
        // Fig. 3: even serial DT-1 in EGT (≈1.65 mW) is beyond the
        // harvesters, and DT-8 (≈71 mW logic) is beyond every source.
        assert_eq!(classify(Power::from_mw(71.0)), Feasibility::Unpowerable);
        let dt1 = classify(Power::from_mw(1.65));
        assert_eq!(dt1.source_name(), "Blue Spark 10mAh");
    }

    #[test]
    fn harvesters_power_analog_scale_designs() {
        let analog_dt = classify(Power::from_uw(40.0));
        assert_eq!(analog_dt.source_name(), "Printed harvester");
        assert!(analog_dt.is_powerable());
    }

    #[test]
    fn molex_is_the_strongest_battery() {
        let d = classify(Power::from_mw(20.0));
        assert_eq!(d.source_name(), "Molex 90mAh");
        assert!(!classify(Power::from_mw(31.0)).is_powerable());
    }

    #[test]
    fn lifetime_scales_inversely_with_demand() {
        let b = PowerSource::blue_spark_30mah();
        let slow = b.lifetime_hours(Power::from_uw(150.0)).unwrap();
        let fast = b.lifetime_hours(Power::from_uw(300.0)).unwrap();
        assert!((slow / fast - 2.0).abs() < 1e-9);
        // Over-budget or zero demands have no lifetime.
        assert!(b.lifetime_hours(Power::from_mw(10.0)).is_none());
        assert!(b.lifetime_hours(Power::ZERO).is_none());
        // Harvesters never report a battery lifetime.
        assert!(PowerSource::printed_harvester()
            .lifetime_hours(Power::from_uw(10.0))
            .is_none());
    }

    #[test]
    fn feasibility_displays_helpfully() {
        let s = format!("{}", classify(Power::from_uw(10.0)));
        assert!(s.contains("Printed harvester"));
        let u = format!("{}", Feasibility::Unpowerable);
        assert!(u.contains("unpowerable"));
    }
}
