#![warn(missing_docs)]

//! # pdk — process design kits for printed and silicon technologies
//!
//! This crate is the cost-model substrate for the reproduction of
//! *Printed Machine Learning Classifiers* (MICRO 2020). It provides:
//!
//! * [`Technology`] — EGT, CNT-TFT and TSMC-40nm process descriptions;
//! * [`CellLibrary`] — standard-cell libraries calibrated to every concrete
//!   PPA number the paper publishes (Table I components, inverter/ROM/DFF
//!   quotes);
//! * [`rom`] — crossbar and bespoke dot-resistor ROM macro pricing;
//! * [`power_src`] — printed batteries and harvesters, and the feasibility
//!   classification used by the paper's Figures 3 and 19;
//! * [`units`] — engineering unit newtypes spanning the nine orders of
//!   magnitude between printed and silicon circuits.
//!
//! ```
//! use pdk::{CellKind, CellLibrary, Technology};
//!
//! // What makes printed lookup tables attractive: an EGT ROM bit is
//! // cheaper than an inverter.
//! let egt = CellLibrary::for_technology(Technology::Egt);
//! assert!(egt.area(CellKind::RomBit) < egt.area(CellKind::Inv));
//! ```

pub mod cell;
pub mod fab;
pub mod library;
pub mod power_src;
pub mod rom;
pub mod tech;
pub mod units;

pub use cell::CellKind;
pub use fab::FabModel;
pub use library::{CellCost, CellLibrary};
pub use power_src::{classify, Feasibility, PowerSource};
pub use rom::{rom_cost, RomCost, RomSpec, RomStyle};
pub use tech::Technology;
pub use units::{Area, Delay, Energy, Power};
