//! Standard-cell kinds and their technology-independent complexity factors.
//!
//! Every technology library in this PDK prices a cell as
//! `per-technology inverter anchor × cell complexity factor`, with explicit
//! per-technology overrides where the paper publishes a concrete number
//! (flip-flops and ROM bit cells). The complexity factors are conventional
//! inverter-equivalents used in standard-cell sizing practice.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A primitive standard cell.
///
/// This is the complete set of leaf cells the gate-level netlist IR may
/// instantiate; every larger block (adders, comparators, multipliers,
/// decoders, shift registers) is composed from these by `netlist`'s
/// structural generators, mirroring how the paper's RTL was mapped by logic
/// synthesis onto the EGT/CNT standard-cell libraries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CellKind {
    /// Single-input inverter — the library's anchor cell.
    Inv,
    /// Non-inverting buffer (two cascaded stages).
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer (select, a, b).
    Mux2,
    /// Positive-edge D flip-flop.
    Dff,
    /// One ROM bit read out through a crossbar (conventional ROM array cell).
    RomBit,
    /// One *printed dot-resistor* ROM bit (bespoke ROM; clear bits are free).
    RomDot,
}

impl CellKind {
    /// All cell kinds, for iteration in library dumps and tests.
    pub const ALL: [CellKind; 12] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Dff,
        CellKind::RomBit,
        CellKind::RomDot,
    ];

    /// Number of data inputs of the cell (select counts for muxes).
    pub fn input_count(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf => 1,
            CellKind::Nand2
            | CellKind::Nor2
            | CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2 => 2,
            CellKind::Mux2 => 3,
            CellKind::Dff => 1,
            CellKind::RomBit | CellKind::RomDot => 1,
        }
    }

    /// Area in inverter-equivalents.
    pub fn area_factor(self) -> f64 {
        match self {
            CellKind::Inv => 1.0,
            CellKind::Buf => 1.5,
            CellKind::Nand2 => 1.4,
            CellKind::Nor2 => 1.4,
            CellKind::And2 => 1.8,
            CellKind::Or2 => 1.8,
            CellKind::Xor2 => 3.0,
            CellKind::Xnor2 => 3.0,
            CellKind::Mux2 => 3.2,
            // Overridden per technology from the paper's quoted numbers.
            CellKind::Dff => 6.4,
            CellKind::RomBit => 0.25,
            CellKind::RomDot => 0.25,
        }
    }

    /// Propagation delay in unit gate-delays.
    pub fn delay_factor(self) -> f64 {
        match self {
            CellKind::Inv => 1.0,
            CellKind::Buf => 1.6,
            CellKind::Nand2 => 1.1,
            CellKind::Nor2 => 1.3,
            CellKind::And2 => 1.5,
            CellKind::Or2 => 1.7,
            CellKind::Xor2 => 2.2,
            CellKind::Xnor2 => 2.2,
            CellKind::Mux2 => 2.0,
            CellKind::Dff => 3.0,
            // Crossbar ROM read; per-technology overrides apply
            // (EGT reads within 1.5× of an inverter; silicon mask ROMs are
            // hundreds of times slower than logic).
            CellKind::RomBit => 1.5,
            CellKind::RomDot => 1.5,
        }
    }

    /// Static power in inverter-equivalents.
    pub fn power_factor(self) -> f64 {
        match self {
            CellKind::Inv => 1.0,
            CellKind::Buf => 1.5,
            CellKind::Nand2 => 1.4,
            CellKind::Nor2 => 1.4,
            CellKind::And2 => 1.8,
            CellKind::Or2 => 1.8,
            CellKind::Xor2 => 3.0,
            CellKind::Xnor2 => 3.0,
            CellKind::Mux2 => 3.2,
            CellKind::Dff => 6.4,
            CellKind::RomBit => 0.33,
            CellKind::RomDot => 0.33,
        }
    }

    /// True for the sequential cell (currently only the D flip-flop).
    pub fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff)
    }

    /// True for memory bit cells.
    pub fn is_rom(self) -> bool {
        matches!(self, CellKind::RomBit | CellKind::RomDot)
    }

    /// Approximate transistor count, used in prototype component inventories.
    pub fn transistor_count(self) -> usize {
        match self {
            CellKind::Inv => 2,
            CellKind::Buf => 4,
            CellKind::Nand2 | CellKind::Nor2 => 4,
            CellKind::And2 | CellKind::Or2 => 6,
            CellKind::Xor2 | CellKind::Xnor2 => 10,
            CellKind::Mux2 => 10,
            CellKind::Dff => 20,
            CellKind::RomBit => 1,
            CellKind::RomDot => 0,
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Inv => "INV",
            CellKind::Buf => "BUF",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Mux2 => "MUX2",
            CellKind::Dff => "DFF",
            CellKind::RomBit => "ROMBIT",
            CellKind::RomDot => "ROMDOT",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverter_is_the_anchor() {
        assert_eq!(CellKind::Inv.area_factor(), 1.0);
        assert_eq!(CellKind::Inv.delay_factor(), 1.0);
        assert_eq!(CellKind::Inv.power_factor(), 1.0);
    }

    #[test]
    fn factors_are_positive_and_finite() {
        for kind in CellKind::ALL {
            assert!(kind.area_factor() > 0.0, "{kind}");
            assert!(kind.delay_factor() > 0.0, "{kind}");
            assert!(kind.power_factor() > 0.0, "{kind}");
        }
    }

    #[test]
    fn xor_is_costlier_than_nand() {
        assert!(CellKind::Xor2.area_factor() > CellKind::Nand2.area_factor());
        assert!(CellKind::Xor2.delay_factor() > CellKind::Nand2.delay_factor());
    }

    #[test]
    fn sequential_and_rom_flags() {
        assert!(CellKind::Dff.is_sequential());
        assert!(!CellKind::Mux2.is_sequential());
        assert!(CellKind::RomBit.is_rom());
        assert!(CellKind::RomDot.is_rom());
        assert!(!CellKind::Inv.is_rom());
    }

    #[test]
    fn input_counts() {
        assert_eq!(CellKind::Inv.input_count(), 1);
        assert_eq!(CellKind::Nand2.input_count(), 2);
        assert_eq!(CellKind::Mux2.input_count(), 3);
    }

    #[test]
    fn dot_rom_has_no_transistors() {
        assert_eq!(CellKind::RomDot.transistor_count(), 0);
        assert!(CellKind::Dff.transistor_count() > CellKind::Inv.transistor_count());
    }
}
