//! Cost model for printed crossbar ROM macros.
//!
//! In EGT technology a ROM is just a crossbar whose crosspoints are shorted
//! by printing a conductive dot (PEDOT:PSS), which is why ROM bits are
//! *cheaper than logic* (§V) and why lookup-based classifier architectures
//! make sense in print while being hopeless in silicon. A ROM macro is
//! priced as:
//!
//! * an address **decoder** (one AND tree per word line, with the first
//!   inverter stage shared across the array — the "decoder reuse" the paper
//!   leans on);
//! * the **bit array** (`words × bits` crossbar cells, or only the *set*
//!   bits when printed as bespoke dot resistors);
//! * per-column **sense buffers**.

use serde::{Deserialize, Serialize};

use crate::cell::CellKind;
use crate::library::CellLibrary;
use crate::units::{Area, Delay, Power};

/// How the bit array is implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RomStyle {
    /// Conventional crossbar: every bit position occupies a crosspoint cell,
    /// set or clear.
    Crossbar,
    /// Bespoke one-time-programmed dot-resistor array (§V-A optimization 2):
    /// a set bit is a printed dot; a clear bit is simply *not printed* and
    /// costs no area and no static power.
    BespokeDots,
}

/// Geometry and contents summary of one ROM macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RomSpec {
    /// Number of addressable words.
    pub words: usize,
    /// Bits per word.
    pub bits: usize,
    /// Number of set ('1') bits across the whole array. Only used by
    /// [`RomStyle::BespokeDots`]; a conventional crossbar pays for every bit.
    pub set_bits: usize,
    /// Bit-array implementation style.
    pub style: RomStyle,
}

impl RomSpec {
    /// Conventional crossbar ROM of `words × bits`.
    pub fn crossbar(words: usize, bits: usize) -> Self {
        RomSpec {
            words,
            bits,
            set_bits: words * bits,
            style: RomStyle::Crossbar,
        }
    }

    /// Bespoke dot-resistor ROM with `set_bits` printed dots.
    pub fn bespoke(words: usize, bits: usize, set_bits: usize) -> Self {
        RomSpec {
            words,
            bits,
            set_bits,
            style: RomStyle::BespokeDots,
        }
    }

    /// Address width in bits (`ceil(log2(words))`, minimum 1).
    pub fn address_bits(&self) -> usize {
        if self.words <= 1 {
            1
        } else {
            (usize::BITS - (self.words - 1).leading_zeros()) as usize
        }
    }
}

/// Priced ROM macro with a cost breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RomCost {
    /// Decoder contribution (shared across all columns).
    pub decoder_area: Area,
    /// Bit-array contribution.
    pub array_area: Area,
    /// Sense-buffer contribution.
    pub sense_area: Area,
    /// Total macro area.
    pub area: Area,
    /// Total static power.
    pub power: Power,
    /// Address-valid to data-valid read latency.
    pub delay: Delay,
}

/// Prices `spec` in the given technology library.
///
/// The decoder is priced as a NOR-plane crossbar (`words × address_bits`
/// crosspoint cells behind a shared inverter rank) — how printed ROM row
/// selection is actually built (the §V-B prototype selects rows with pass
/// EGTs, not AND-gate trees). Per unshared lookup the decoder still
/// dominates small arrays, which is why a lone ROM comparison loses to
/// logic and "decoder reuse" across comparisons is what makes lookup-based
/// classifiers win.
///
/// Read delay grows gently with depth (longer word lines): the bit-cell
/// delay is scaled by `1 + address_bits / 4`.
///
/// ```
/// use pdk::{CellLibrary, Technology};
/// use pdk::rom::{rom_cost, RomSpec};
/// let lib = CellLibrary::for_technology(Technology::Egt);
/// let full = rom_cost(&RomSpec::crossbar(16, 8), &lib);
/// let dots = rom_cost(&RomSpec::bespoke(16, 8, 16), &lib);
/// assert!(dots.area < full.area); // clear bits are free when printed as dots
/// ```
pub fn rom_cost(spec: &RomSpec, lib: &CellLibrary) -> RomCost {
    let abits = spec.address_bits();
    let inv = lib.cost(CellKind::Inv);
    let buf = lib.cost(CellKind::Buf);
    let bit = lib.cost(match spec.style {
        RomStyle::Crossbar => CellKind::RomBit,
        RomStyle::BespokeDots => CellKind::RomDot,
    });
    // A bespoke ROM's decoder plane is itself one-time printed: each of
    // its `words x address_bits` connections is a dot. Conventional
    // crossbar ROMs pay the full addressable cell.
    let plane_cell = lib.cost(match spec.style {
        RomStyle::Crossbar => CellKind::RomBit,
        RomStyle::BespokeDots => CellKind::RomDot,
    });

    // Decoder: shared true/complement inverter rank + NOR-plane crossbar.
    let decoder_cells = spec.words * abits;
    let decoder_area = inv.area * abits as f64 + plane_cell.area * decoder_cells as f64;
    let decoder_power = inv.power * abits as f64 + plane_cell.power * decoder_cells as f64;
    let decoder_delay = inv.delay + plane_cell.delay;

    let paid_bits = match spec.style {
        RomStyle::Crossbar => spec.words * spec.bits,
        RomStyle::BespokeDots => spec.set_bits,
    };
    let array_area = bit.area * paid_bits as f64;
    let array_power = bit.power * paid_bits as f64;

    // Read-out is a sense resistor per column (the §V-B prototype reads
    // across R_sense), priced as one crossbar cell rather than logic.
    let sense_cell = lib.cost(CellKind::RomBit);
    let sense_area = sense_cell.area * spec.bits as f64;
    let sense_power = sense_cell.power * spec.bits as f64;

    let depth_factor = 2.0 + abits as f64 / 2.0;

    RomCost {
        decoder_area,
        array_area,
        sense_area,
        area: decoder_area + array_area + sense_area,
        power: decoder_power + array_power + sense_power,
        delay: decoder_delay + bit.delay * depth_factor + buf.delay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::Technology;

    fn egt() -> CellLibrary {
        CellLibrary::for_technology(Technology::Egt)
    }

    #[test]
    fn address_bits_are_ceil_log2() {
        assert_eq!(RomSpec::crossbar(1, 8).address_bits(), 1);
        assert_eq!(RomSpec::crossbar(2, 8).address_bits(), 1);
        assert_eq!(RomSpec::crossbar(3, 8).address_bits(), 2);
        assert_eq!(RomSpec::crossbar(4, 8).address_bits(), 2);
        assert_eq!(RomSpec::crossbar(255, 8).address_bits(), 8);
        assert_eq!(RomSpec::crossbar(256, 8).address_bits(), 8);
        assert_eq!(RomSpec::crossbar(257, 8).address_bits(), 9);
    }

    #[test]
    fn bespoke_dots_scale_with_set_bits_only() {
        let lib = egt();
        let dense = rom_cost(&RomSpec::bespoke(16, 8, 128), &lib);
        let sparse = rom_cost(&RomSpec::bespoke(16, 8, 10), &lib);
        assert!(sparse.array_area < dense.array_area);
        assert_eq!(sparse.decoder_area, dense.decoder_area);
        // An all-clear bespoke array costs no array area at all.
        let empty = rom_cost(&RomSpec::bespoke(16, 8, 0), &lib);
        assert!(empty.array_area.is_zero());
    }

    #[test]
    fn crossbar_pays_for_every_bit() {
        let lib = egt();
        let full = rom_cost(&RomSpec::crossbar(16, 8), &lib);
        let expected = lib.area(crate::cell::CellKind::RomBit) * 128.0;
        assert!((full.array_area.as_mm2() - expected.as_mm2()).abs() < 1e-9);
    }

    #[test]
    fn decoder_dominates_tiny_roms() {
        // §V: "a ROM-based comparison is always more expensive than its
        // logic-based counterpart" unless the decoder is shared — because
        // the decoder is the expensive piece for small arrays.
        let lib = egt();
        let small = rom_cost(&RomSpec::crossbar(256, 1), &lib);
        assert!(small.decoder_area > small.array_area);
    }

    #[test]
    fn totals_are_component_sums() {
        let lib = egt();
        let c = rom_cost(&RomSpec::crossbar(64, 8), &lib);
        let sum = c.decoder_area + c.array_area + c.sense_area;
        assert!((c.area.as_mm2() - sum.as_mm2()).abs() < 1e-9);
    }

    #[test]
    fn bigger_roms_cost_more() {
        let lib = egt();
        let small = rom_cost(&RomSpec::crossbar(16, 4), &lib);
        let big = rom_cost(&RomSpec::crossbar(64, 8), &lib);
        assert!(big.area > small.area);
        assert!(big.power > small.power);
        assert!(big.delay >= small.delay);
    }
}
