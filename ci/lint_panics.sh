#!/usr/bin/env bash
# Forbids panic!(...) and .unwrap( on the hot simulation / metrics paths.
#
# These files expose fallible `try_*` APIs (netlist::SimError,
# ml::MetricsError); their non-test code must route every failure
# through those types so the differential fuzzer can distinguish
# "engines disagree" from "input rejected". The legacy panicking
# wrappers delegate to SimError::raise() (which lives in error.rs,
# outside this lint's scope) so the panic message stays Display-formatted.
#
# Test modules are exempt: everything from the first `#[cfg(test)]` line
# to end-of-file is stripped before grepping, which is why these files
# keep all their test modules at the bottom.
set -euo pipefail

cd "$(dirname "$0")/.."

FILES=(
  crates/netlist/src/sim.rs
  crates/netlist/src/batch.rs
  crates/netlist/src/compile.rs
  crates/ml/src/metrics.rs
)

status=0
for f in "${FILES[@]}"; do
  # Strip from the first #[cfg(test)] to EOF, drop comment lines (doc
  # examples are compiled as tests, not hot-path code), then look for
  # forbidden tokens in what remains.
  nontest=$(sed '/^#\[cfg(test)\]/,$d' "$f" | grep -vE '^\s*//')
  hits=$(printf '%s\n' "$nontest" | grep -nE 'panic!\(|\.unwrap\(' || true)
  if [ -n "$hits" ]; then
    echo "lint_panics: forbidden panic!/unwrap in non-test code of $f:" >&2
    printf '%s\n' "$hits" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "lint_panics: hot paths are panic-free (checked ${#FILES[@]} files)"
fi
exit "$status"
