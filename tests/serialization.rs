//! Serde round-trips and emitted-artifact sanity checks.

use printed_ml::core::flow::{TreeArch, TreeFlow};
use printed_ml::ml::synth::Application;
use printed_ml::netlist::{to_verilog, Module};
use printed_ml::pdk::{CellLibrary, RomSpec, Technology};

#[test]
fn cell_libraries_round_trip_through_json() {
    use printed_ml::pdk::CellKind;
    for tech in Technology::ALL {
        let lib = CellLibrary::for_technology(tech);
        let json = serde_json::to_string(&lib).expect("serialize");
        let back: CellLibrary = serde_json::from_str(&json).expect("deserialize");
        // JSON float printing can lose the last ulp; compare costs to
        // relative tolerance instead of bitwise equality.
        assert_eq!(lib.technology(), back.technology());
        for kind in CellKind::ALL {
            let a = lib.cost(kind);
            let b = back.cost(kind);
            assert!((a.area.as_mm2() - b.area.as_mm2()).abs() <= a.area.as_mm2() * 1e-12);
            assert!((a.delay.as_secs() - b.delay.as_secs()).abs() <= a.delay.as_secs() * 1e-12);
            assert!((a.power.as_mw() - b.power.as_mw()).abs() <= a.power.as_mw() * 1e-12);
        }
    }
}

#[test]
fn rom_specs_round_trip_through_json() {
    let spec = RomSpec::bespoke(64, 12, 300);
    let json = serde_json::to_string(&spec).unwrap();
    let back: RomSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec, back);
}

#[test]
fn modules_round_trip_through_json() {
    let flow = TreeFlow::new(Application::Har, 2, 7);
    let module = flow.module(TreeArch::BespokeParallel).unwrap();
    let json = serde_json::to_string(&module).expect("serialize module");
    let back: Module = serde_json::from_str(&json).expect("deserialize module");
    assert_eq!(module, back);
    back.validate().expect("deserialized module still valid");
}

#[test]
fn design_reports_serialize_for_tooling() {
    let flow = TreeFlow::new(Application::Cardio, 2, 7);
    let report = flow.report(TreeArch::BespokeParallel, Technology::Egt);
    let json = serde_json::to_string_pretty(&report).unwrap();
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert!(
        v["area"].is_number()
            || v["area"].is_object()
            || v["area"].is_f64()
            || !v["area"].is_null()
    );
    assert_eq!(v["technology"], "Egt");
    assert!(v["gate_count"].as_u64().unwrap() > 0);
}

#[test]
fn emitted_verilog_is_structurally_sane_for_every_architecture() {
    use printed_ml::core::LookupConfig;
    let flow = TreeFlow::new(Application::Cardio, 4, 7);
    for arch in [
        TreeArch::ConventionalSerial,
        TreeArch::ConventionalParallel,
        TreeArch::BespokeSerial,
        TreeArch::BespokeParallel,
        TreeArch::Lookup(LookupConfig::optimized()),
    ] {
        let module = flow.module(arch).unwrap();
        let v = to_verilog(&module);
        // Module/endmodule balance.
        assert_eq!(
            v.matches("module ").count() - v.matches("endmodule").count(),
            0,
            "{arch:?}"
        );
        // Every case has a default and an endcase.
        assert_eq!(
            v.matches("case (").count(),
            v.matches("endcase").count(),
            "{arch:?}"
        );
        assert_eq!(
            v.matches("case (").count(),
            v.matches("default:").count(),
            "{arch:?}"
        );
        // Sequential designs declare the clock they use.
        if !module.is_combinational() {
            assert!(v.contains("input wire clk"), "{arch:?}");
        }
        // Every input port appears in the body.
        for p in &module.inputs {
            assert!(
                v.contains(&format!("{}[", p.name)),
                "{arch:?} missing port {}",
                p.name
            );
        }
    }
}
