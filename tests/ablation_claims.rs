//! Integration-level assertions over the ablation findings — the
//! statements EXPERIMENTS.md makes about our own extensions must keep
//! holding, not just print once.

use printed_ml::core::ensemble::ForestStyle;
use printed_ml::core::flow::{ForestFlow, TreeArch, TreeFlow};
use printed_ml::core::LookupConfig;
use printed_ml::ml::metrics::accuracy;
use printed_ml::ml::synth::Application;
use printed_ml::netlist::{analyze, insert_buffers, max_fanout};
use printed_ml::pdk::{CellLibrary, Technology};

#[test]
fn fanout_repair_is_monotone_in_the_limit() {
    // Tighter limits cost strictly more area and never less delay.
    let flow = TreeFlow::new(Application::Pendigits, 6, 7);
    let module = flow.module(TreeArch::BespokeParallel).unwrap();
    let lib = CellLibrary::for_technology(Technology::Egt);
    let mut prev_area = analyze(&module, &lib).area;
    for limit in [8usize, 4, 2] {
        let repaired = insert_buffers(&module, limit);
        assert!(max_fanout(&repaired) <= limit);
        let ppa = analyze(&repaired, &lib);
        assert!(ppa.area >= prev_area, "limit {limit} shrank the design");
        prev_area = ppa.area;
    }
}

#[test]
fn drift_degrades_accuracy_monotonically_on_gasid() {
    let flow = TreeFlow::new(Application::GasId, 4, 7);
    let mut prev = f64::INFINITY;
    for drift in [0.0, 0.25, 0.5, 1.0] {
        let drifted = flow.test.with_drift(drift, 7);
        let acc = accuracy(
            drifted
                .x
                .iter()
                .map(|r| flow.qt.predict(&flow.fq.code_row(r))),
            drifted.y.iter().copied(),
        )
        .unwrap();
        assert!(
            acc <= prev + 0.02,
            "drift {drift}: accuracy rose {prev} -> {acc}"
        );
        prev = acc;
    }
    assert!(
        prev < 0.85,
        "1-sigma drift should visibly hurt GasID ({prev})"
    );
}

#[test]
fn bent_corner_is_strictly_worse_but_functional() {
    let flow = TreeFlow::new(Application::Cardio, 4, 7);
    let module = flow.module(TreeArch::BespokeParallel).unwrap();
    let nominal = CellLibrary::for_technology(Technology::Egt);
    let bent = nominal.bent_corner();
    let p0 = analyze(&module, &nominal);
    let p1 = analyze(&module, &bent);
    assert!(p1.delay > p0.delay);
    assert!(p1.power > p0.power);
    assert_eq!(
        p1.area.as_mm2(),
        p0.area.as_mm2(),
        "bending does not change area"
    );
}

#[test]
fn lookup_forests_beat_lookup_single_trees_on_sharing() {
    // The cross-tree decoder-sharing claim, at the flow level: building
    // the members as one lookup forest (merged per-feature ROMs, one
    // decoder each) must cost less ROM area than building them as
    // separate lookup trees.
    let flow = ForestFlow::new(Application::Pendigits, 4, 7);
    let lib = CellLibrary::for_technology(Technology::Egt);
    // Use a 4-bit RF-8 forest: LUT-friendly widths, and eight √n-feature
    // subsets over 16 features guarantee cross-tree feature overlap.
    let data = Application::Pendigits.generate(7);
    let (train, _) = data.split(0.7, 42);
    let forest = printed_ml::ml::forest::RandomForest::fit(
        &train,
        printed_ml::ml::forest::ForestParams::paper(8),
    );
    let fq = printed_ml::ml::quant::FeatureQuantizer::fit(&train, 4);
    let qf = printed_ml::ml::quant::QuantizedForest::from_forest(&forest, &fq);
    let shared = printed_ml::core::ensemble::forest_engine(
        &qf,
        ForestStyle::Lookup(LookupConfig::optimized()),
    );
    let shared_ppa = analyze(&shared, &lib);
    let mut member_roms = 0usize;
    let mut member_rom_area = printed_ml::pdk::Area::ZERO;
    for single in qf.trees() {
        let m = printed_ml::core::lookup::lookup_parallel(single, LookupConfig::optimized());
        member_roms += m.roms.len();
        member_rom_area += analyze(&m, &lib).rom_area;
    }
    assert!(
        shared.roms.len() < member_roms,
        "ensembles must amortize decoders: forest has {} ROMs vs members' {member_roms}",
        shared.roms.len()
    );
    assert!(
        shared_ppa.rom_area < member_rom_area,
        "ensembles must amortize ROM area: forest {} vs members {member_rom_area}",
        shared_ppa.rom_area
    );
    let _ = flow;
}

#[test]
fn serial_svm_is_slower_and_thriftier_on_multipliers() {
    use printed_ml::core::bespoke::bespoke_svm;
    use printed_ml::core::serial_svm;
    let data = Application::RedWine.generate(7);
    let (train, _) = data.split(0.7, 42);
    let s = printed_ml::ml::Standardizer::fit(&train);
    let train = s.transform(&train);
    let svm = printed_ml::ml::SvmRegressor::fit(&train, 150, 1e-4);
    let fq = printed_ml::ml::quant::FeatureQuantizer::fit(&train, 8);
    let qs = printed_ml::ml::quant::QuantizedSvm::from_svm(&svm, &fq);
    let lib = CellLibrary::for_technology(Technology::Egt);
    let parallel = analyze(&bespoke_svm(&qs), &lib);
    let (module, info) = serial_svm(&qs);
    let serial = analyze(&module, &lib);
    assert!(info.cycles > 1);
    assert!(
        serial.latency(info.cycles) > parallel.latency(1),
        "serial must be slower"
    );
    assert!(
        serial.logic_area < parallel.logic_area,
        "one multiplier beats {} multipliers in logic: {} vs {}",
        qs.mac_count(),
        serial.logic_area,
        parallel.logic_area
    );
}
