//! End-to-end tests of the `printed-ml` command-line interface.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_printed-ml"))
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = cli().args(args).output().expect("spawn printed-ml");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_args_prints_usage() {
    let (stdout, _, ok) = run(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn list_names_all_seven_datasets() {
    let (stdout, _, ok) = run(&["list"]);
    assert!(ok);
    for name in [
        "arrhythmia",
        "cardio",
        "gasid",
        "har",
        "pendigits",
        "redwine",
        "whitewine",
    ] {
        assert!(stdout.contains(name), "missing {name}:\n{stdout}");
    }
}

#[test]
fn report_prints_ppa_and_power_verdict() {
    let (stdout, _, ok) = run(&[
        "report",
        "--app",
        "har",
        "--depth",
        "2",
        "--arch",
        "bespoke-parallel",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("model: DT-2"));
    assert!(stdout.contains("power:"));
    assert!(stdout.contains("EGT"));
}

#[test]
fn generate_writes_verilog_and_testbench() {
    let dir = std::env::temp_dir().join(format!("printed-ml-cli-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let v = dir.join("t.v");
    let tb = dir.join("tb.v");
    let (stdout, _, ok) = run(&[
        "generate",
        "--app",
        "har",
        "--depth",
        "2",
        "--verilog",
        v.to_str().unwrap(),
        "--testbench",
        tb.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    let vtext = std::fs::read_to_string(&v).unwrap();
    assert!(vtext.contains("module bespoke_parallel_tree"));
    let tbtext = std::fs::read_to_string(&tb).unwrap();
    assert!(tbtext.contains("module tb;"));
    assert!(tbtext.contains("PASS"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_dataset_fails_with_a_helpful_error() {
    let (_, stderr, ok) = run(&["report", "--app", "nonsense"]);
    assert!(!ok);
    assert!(stderr.contains("unknown dataset"));
    assert!(stderr.contains("available"));
}

#[test]
fn unknown_arch_fails() {
    let (_, stderr, ok) = run(&["report", "--app", "har", "--arch", "magic"]);
    assert!(!ok);
    assert!(stderr.contains("unknown tree architecture"));
}

#[test]
fn svm_report_works() {
    let (stdout, _, ok) = run(&["report", "--app", "redwine", "--svm", "--arch", "analog"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("SVM-R"));
    assert!(stdout.contains("analog"));
}

#[test]
fn variation_reports_each_sigma() {
    let (stdout, _, ok) = run(&[
        "variation",
        "--app",
        "har",
        "--depth",
        "2",
        "--sigmas",
        "0.05,0.2",
        "--trials",
        "8",
        "--rows",
        "30",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("model: DT-2"));
    assert!(stdout.contains("worst agreement"));
    assert!(stdout.contains("0.05"));
    assert!(stdout.contains("0.2"));
}

#[test]
fn svm_variation_works() {
    let (stdout, _, ok) = run(&[
        "variation",
        "--app",
        "redwine",
        "--svm",
        "--sigmas",
        "0.1",
        "--trials",
        "4",
        "--rows",
        "20",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("SVM-R"));
    assert!(stdout.contains("0.1"));
}

#[test]
fn variation_rejects_a_bad_sigma_list() {
    let (_, stderr, ok) = run(&["variation", "--app", "har", "--sigmas", "0.1,oops"]);
    assert!(!ok);
    assert!(stderr.contains("bad sigma"));
}

#[test]
fn sweep_covers_all_architectures() {
    let (stdout, _, ok) = run(&["sweep", "--app", "har", "--depth", "2"]);
    assert!(ok);
    for arch in [
        "conv-serial",
        "conv-parallel",
        "bespoke-serial",
        "bespoke-parallel",
        "lookup-opt",
        "analog",
    ] {
        assert!(stdout.contains(arch), "missing {arch}:\n{stdout}");
    }
}
