//! The observability layer's two contracts:
//!
//! 1. **Out-of-band**: instrumentation observes the pipeline but never
//!    feeds back into it — an instrumented run produces bit-identical
//!    results to an uninstrumented one at any thread count.
//! 2. **Stable schema**: the `obs-report-v1` JSON shape (key sets and
//!    value types, not values) is pinned so downstream tooling — the CI
//!    perf gate above all — can parse any bin's `report` section.

use std::sync::Mutex;

use printed_ml::core::flow::{TreeArch, TreeFlow};
use printed_ml::exec::with_threads;
use printed_ml::ml::synth::Application;
use printed_ml::netlist;
use printed_ml::obs;

use serde::{Deserialize, Serialize};
use serde_json::Value;

/// The obs registries are process-global; serialize every test that
/// touches them.
static LOCK: Mutex<()> = Mutex::new(());

/// Re-enables obs on drop so a failing test cannot leak a disabled
/// registry into the next one.
struct EnableGuard;
impl Drop for EnableGuard {
    fn drop(&mut self) {
        obs::set_enabled(true);
    }
}

/// One representative slice of the pipeline: train + quantize + generate
/// (TreeFlow), then grade fault coverage — exercising CART fits, the
/// optimizer, the batch simulator and the exec pool.
fn pipeline_run() -> (usize, usize, Vec<netlist::Fault>) {
    let flow = TreeFlow::new(Application::Cardio, 4, 7);
    let module = flow.module(TreeArch::BespokeParallel).expect("digital");
    let used = flow.qt.used_features();
    let vectors: Vec<Vec<u64>> = flow
        .test
        .x
        .iter()
        .take(30)
        .map(|row| {
            let codes = flow.fq.code_row(row);
            used.iter().map(|&f| codes[f]).collect()
        })
        .collect();
    let cov = netlist::fault_coverage(&module, &vectors);
    (cov.total, cov.detected, cov.undetected)
}

#[test]
fn instrumented_runs_are_bit_identical_to_uninstrumented() {
    let _lock = LOCK.lock().unwrap();
    let _guard = EnableGuard;
    for threads in [1, 4, 8] {
        obs::set_enabled(true);
        obs::reset();
        let instrumented = with_threads(threads, pipeline_run);
        assert!(
            obs::report().counter("ml.cart.fits") > 0,
            "instrumented arm recorded nothing"
        );
        obs::set_enabled(false);
        obs::reset();
        let bare = with_threads(threads, pipeline_run);
        obs::set_enabled(true);
        assert_eq!(
            instrumented, bare,
            "instrumentation changed results at {threads} thread(s)"
        );
    }
}

#[test]
fn disabled_obs_records_nothing() {
    let _lock = LOCK.lock().unwrap();
    let _guard = EnableGuard;
    obs::set_enabled(false);
    obs::reset();
    {
        let _span = obs::span("ghost");
        obs::counter_add("ghost.counter", 5);
        obs::gauge_set("ghost.gauge", 1.0);
    }
    obs::set_enabled(true);
    let report = obs::report();
    assert!(report.spans.is_empty());
    assert!(report.counters.is_empty());
    assert!(report.gauges.is_empty());
}

#[test]
fn exec_pool_counters_accumulate() {
    let _lock = LOCK.lock().unwrap();
    obs::reset();
    let items: Vec<u64> = (0..64).collect();
    let _span = obs::span("pool_test");
    let out = with_threads(4, || printed_ml::exec::parallel_map(&items, |_, &x| x * 2));
    assert_eq!(out[63], 126);
    let report = obs::report();
    assert_eq!(report.counter("exec.pools"), 1);
    assert_eq!(report.counter("exec.tasks"), 64);
    assert!(report.counter("exec.busy_ns") > 0);
    let util = report.gauge("exec.utilization");
    assert!((0.0..=1.0).contains(&util), "utilization {util}");
    // Worker spans land under the caller's span path, not a detached root.
    drop(_span);
    let report = obs::report();
    assert_eq!(report.spans.len(), 1);
    assert_eq!(report.spans[0].name, "pool_test");
}

#[test]
fn variation_paths_record_identical_obs_keys() {
    use printed_ml::analog;
    use printed_ml::core::flow::SvmFlow;

    let _lock = LOCK.lock().unwrap();

    // Tree path: 65 trials x 30 rows through the compiled engine.
    let flow = TreeFlow::new(Application::Har, 2, 7);
    let rows = flow.coded_rows(30);
    obs::reset();
    {
        let _root = obs::span("test.variation");
        analog::analyze_tree_variation(&flow.qt, &rows, 0.1, 65, 7);
    }
    let tree_report = obs::report();

    // SVM path: same budget — it must emit the same keys (obs parity;
    // the scalar SVM analyzer used to record nothing).
    let svm_flow = SvmFlow::new(Application::RedWine, 7);
    let svm_rows = svm_flow.coded_rows(30);
    obs::reset();
    {
        let _root = obs::span("test.variation");
        analog::analyze_svm_variation(&svm_flow.qs, svm_flow.n_features, &svm_rows, 0.1, 65, 7);
    }
    let svm_report = obs::report();

    for report in [&tree_report, &svm_report] {
        assert_eq!(report.counter("analog.variation.compiles"), 1);
        assert_eq!(report.counter("analog.variation.trials"), 65);
        assert_eq!(report.counter("analog.variation.rows"), 65 * 30);
        // 65 trials = one full 64-lane block plus a one-lane remainder.
        assert_eq!(report.counter("analog.variation.lane_blocks"), 2);
        let root = report.span(&["test.variation"]).expect("root span");
        assert!(
            root.children.iter().any(|c| c.name == "analog.variation"),
            "missing analog.variation span under {:?}",
            root.children.iter().map(|c| &c.name).collect::<Vec<_>>()
        );
    }
}

/// Asserts `value` is an object with exactly `keys`, returning the
/// fields for nested checks.
fn object_keys<'v>(value: &'v Value, keys: &[&str]) -> Vec<&'v Value> {
    let Value::Object(fields) = value else {
        panic!("expected object, got {value:?}");
    };
    let got: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(got, keys, "object key set drifted");
    fields.iter().map(|(_, v)| v).collect()
}

#[test]
fn report_json_schema_is_pinned() {
    let _lock = LOCK.lock().unwrap();
    obs::reset();
    {
        let _outer = obs::span("golden.outer");
        let _inner = obs::span("golden.inner");
        obs::counter_add("golden.counter", 3);
        obs::gauge_set("golden.gauge", 0.5);
    }
    let report = obs::report();
    let value = report.to_value();

    // Top level: schema tag + the three sections, in order.
    let fields = object_keys(&value, &["schema", "spans", "counters", "gauges"]);
    assert_eq!(fields[0].as_str(), Some(obs::SCHEMA));
    assert_eq!(fields[0].as_str(), Some("obs-report-v1"));

    // Span nodes: name/calls/total_s/self_s/children, recursively.
    let spans = fields[1].as_array().expect("spans is an array");
    assert_eq!(spans.len(), 1);
    let span_fields = object_keys(
        &spans[0],
        &["name", "calls", "total_s", "self_s", "children"],
    );
    assert_eq!(span_fields[0].as_str(), Some("golden.outer"));
    assert_eq!(span_fields[1].as_u64(), Some(1));
    assert!(span_fields[2].as_f64().is_some(), "total_s is a number");
    assert!(span_fields[3].as_f64().is_some(), "self_s is a number");
    let children = span_fields[4].as_array().expect("children is an array");
    assert_eq!(children.len(), 1);
    let child_fields = object_keys(
        &children[0],
        &["name", "calls", "total_s", "self_s", "children"],
    );
    assert_eq!(child_fields[0].as_str(), Some("golden.inner"));

    // Counters: name/value pairs with integer values.
    let counters = fields[2].as_array().expect("counters is an array");
    let counter_fields = object_keys(&counters[0], &["name", "value"]);
    assert_eq!(counter_fields[0].as_str(), Some("golden.counter"));
    assert_eq!(counter_fields[1].as_u64(), Some(3));

    // Gauges: name/value pairs with float values.
    let gauges = fields[3].as_array().expect("gauges is an array");
    let gauge_fields = object_keys(&gauges[0], &["name", "value"]);
    assert_eq!(gauge_fields[0].as_str(), Some("golden.gauge"));
    assert_eq!(gauge_fields[1].as_f64(), Some(0.5));

    // And the schema round-trips: what a bin writes, the perf gate reads.
    let parsed = obs::Report::from_value(&value).expect("deserialize report");
    assert_eq!(parsed, report);
}
