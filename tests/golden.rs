//! Golden regression tests: pin the deterministic quantities of the
//! seed-7 reproduction pipeline so refactors that silently change results
//! fail loudly. Every value here was produced by the recorded
//! `repro_all` run documented in EXPERIMENTS.md; if an intentional change
//! moves one, update it *and* EXPERIMENTS.md together.

use printed_ml::ml::opcount::CountOps;
use printed_ml::ml::synth::Application;
use printed_ml::ml::tree::{DecisionTree, TreeParams};
use printed_ml::ml::{LogisticRegression, SvmClassifier};

#[test]
fn dataset_shapes_are_pinned() {
    let expect = [
        (Application::Arrhythmia, 263, 11, 452),
        (Application::Cardio, 19, 3, 2126),
        (Application::GasId, 127, 6, 2000),
        (Application::Har, 12, 5, 3000),
        (Application::Pendigits, 16, 10, 5000),
        (Application::RedWine, 11, 6, 1599),
        (Application::WhiteWine, 11, 7, 4898),
    ];
    for (app, features, classes, samples) in expect {
        let d = app.generate(7);
        assert_eq!(
            (d.n_features(), d.n_classes, d.len()),
            (features, classes, samples),
            "{}",
            app.name()
        );
    }
}

#[test]
fn formula_exact_op_counts_match_the_paper_cells() {
    // These equal the published Table II entries exactly because they are
    // determined by dataset shape, not training noise.
    let arr = Application::Arrhythmia.generate(7);
    let svm_c = SvmClassifier::fit(&arr, 1, 1e-3, 7);
    assert_eq!(svm_c.op_count().macs, 14_465); // paper: "14k"
    assert_eq!(svm_c.op_count().comparisons, 55);
    let lr = LogisticRegression::fit(&arr, 1, 0.1);
    assert_eq!(lr.op_count().macs, 2_893); // paper: 2893
}

#[test]
fn seed7_tree_structures_are_stable() {
    // Node counts of the seed-7 trained trees (not paper values — ours,
    // pinned against accidental drift in training or data generation).
    let counts: Vec<(Application, usize, usize)> = vec![
        (Application::Cardio, 4, 14),
        (Application::Har, 4, 14),
        (Application::Pendigits, 4, 15),
    ];
    for (app, depth, expect_nodes) in counts {
        let data = app.generate(7);
        let (train, _) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(depth));
        assert_eq!(
            tree.comparison_count(),
            expect_nodes,
            "{} depth {}: drifted to {} nodes",
            app.name(),
            depth,
            tree.comparison_count()
        );
    }
}

#[test]
fn conventional_engine_gate_counts_are_stable() {
    use printed_ml::core::conventional::parallel_tree::{generate, ParallelTreeSpec};
    use printed_ml::core::conventional::svm::{generate as gen_svm, SvmSpec};
    // Structure-determined: depends only on the generators.
    let dt4 = generate(&ParallelTreeSpec::conventional(4));
    assert_eq!(dt4.dff_count(), 15 * 2 * 8 + 16 * 5);
    let svm4 = gen_svm(&SvmSpec {
        width: 4,
        n_features: 8,
        n_boundaries: 3,
    });
    // 8 features x (2 registers x 4b) + boundary registers 3 x sum_width.
    let sum_width = SvmSpec {
        width: 4,
        n_features: 8,
        n_boundaries: 3,
    }
    .sum_width();
    assert_eq!(svm4.dff_count(), 8 * 2 * 4 + 3 * sum_width);
}

#[test]
fn width_search_choices_are_stable() {
    use printed_ml::core::flow::TreeFlow;
    // The §IV-A width search is deterministic at seed 7; pin its picks.
    let picks: Vec<(Application, usize)> = vec![(Application::Cardio, 8), (Application::Har, 12)];
    for (app, expect_bits) in picks {
        let flow = TreeFlow::new(app, 4, 7);
        assert_eq!(
            flow.choice.bits,
            expect_bits,
            "{}: width search drifted to {} bits",
            app.name(),
            flow.choice.bits
        );
    }
}
