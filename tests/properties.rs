//! Property-based tests over the core invariants of the reproduction.
//!
//! * hardware/software equivalence holds for *arbitrary* trained models,
//!   not just the seven benchmark datasets;
//! * the logic optimizer never changes a circuit's function;
//! * quantization is monotone;
//! * constant multipliers agree with integer multiplication for any
//!   coefficient.
//!
//! Each property runs over a fixed batch of pseudo-random cases drawn
//! from per-case deterministic seed streams (`exec::task_seed`), so a
//! failure reproduces exactly from the printed case index.

use exec::rng::StdRng;
use exec::task_seed;

use printed_ml::core::bespoke::{bespoke_parallel, bespoke_svm};
use printed_ml::core::lookup::{lookup_parallel, LookupConfig};
use printed_ml::ml::quant::{FeatureQuantizer, QuantizedSvm, QuantizedTree};
use printed_ml::ml::tree::{DecisionTree, TreeParams};
use printed_ml::ml::{Dataset, SvmRegressor};
use printed_ml::netlist::arith::const_multiply;
use printed_ml::netlist::builder::NetlistBuilder;
use printed_ml::netlist::ir::Signal;
use printed_ml::netlist::{optimize, Simulator};
use printed_ml::pdk::CellKind;

/// Runs `check` on `cases` deterministic pseudo-random cases.
fn cases(root: u64, count: u64, mut check: impl FnMut(u64, &mut StdRng)) {
    for i in 0..count {
        let mut rng = StdRng::seed_from_u64(task_seed(root, i));
        check(i, &mut rng);
    }
}

/// A small random labelled dataset (2-4 features, 2-4 classes).
fn random_dataset(rng: &mut StdRng) -> Dataset {
    let n_features = rng.gen_range(2usize..=4);
    let n_classes = rng.gen_range(2usize..=4);
    let n_samples = rng.gen_range(20usize..=60);
    let mut x = Vec::with_capacity(n_samples);
    let mut y = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        let label = rng.gen_range(0usize..n_classes);
        let row: Vec<f64> = (0..n_features)
            .map(|f| rng.gen_range(-2.0f64..2.0) + (label as f64) * 0.4 * ((f % 2) as f64))
            .collect();
        x.push(row);
        y.push(label);
    }
    Dataset::new("prop", x, y, n_classes)
}

/// A random combinational DAG mixing constants and nets.
fn random_circuit(
    rng: &mut StdRng,
    n_gates: usize,
    n_inputs: usize,
    n_outputs: usize,
) -> printed_ml::netlist::Module {
    let mut b = NetlistBuilder::new("random");
    let inputs = b.input("x", n_inputs);
    let mut pool: Vec<Signal> = inputs.clone();
    pool.push(Signal::ZERO);
    pool.push(Signal::ONE);
    let kinds = [
        CellKind::Inv,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Buf,
    ];
    for _ in 0..n_gates {
        let kind = kinds[rng.gen_range(0usize..kinds.len())];
        let ins: Vec<Signal> = (0..kind.input_count())
            .map(|_| pool[rng.gen_range(0usize..pool.len())])
            .collect();
        let out = b.gate(kind, &ins);
        pool.push(out);
    }
    let outs: Vec<Signal> = pool.iter().rev().take(n_outputs).copied().collect();
    b.output("o", &outs);
    b.finish()
}

#[test]
fn bespoke_parallel_equals_model_on_random_datasets() {
    cases(0xB15_0001, 24, |case, rng| {
        let data = random_dataset(rng);
        let depth = rng.gen_range(1usize..=4);
        let bits = rng.gen_range(3usize..=8);
        let tree = DecisionTree::fit(&data, TreeParams::with_depth(depth));
        let fq = FeatureQuantizer::fit(&data, bits);
        let qt = QuantizedTree::from_tree(&tree, &fq);
        let module = bespoke_parallel(&qt);
        let mut sim = Simulator::new(&module);
        let used = qt.used_features();
        for row in data.x.iter().take(30) {
            let codes = fq.code_row(row);
            for (slot, &f) in used.iter().enumerate() {
                sim.set(&format!("f{slot}"), codes[f]);
            }
            sim.settle();
            assert_eq!(sim.get("class") as usize, qt.predict(&codes), "case {case}");
        }
    });
}

#[test]
fn lookup_tree_equals_model_on_random_datasets() {
    cases(0xB15_0002, 24, |case, rng| {
        let data = random_dataset(rng);
        let depth = rng.gen_range(1usize..=4);
        let tree = DecisionTree::fit(&data, TreeParams::with_depth(depth));
        let fq = FeatureQuantizer::fit(&data, 4);
        let qt = QuantizedTree::from_tree(&tree, &fq);
        let module = lookup_parallel(&qt, LookupConfig::optimized());
        let mut sim = Simulator::new(&module);
        let used = qt.used_features();
        for row in data.x.iter().take(30) {
            let codes = fq.code_row(row);
            for (slot, &f) in used.iter().enumerate() {
                sim.set(&format!("f{slot}"), codes[f]);
            }
            sim.settle();
            assert_eq!(sim.get("class") as usize, qt.predict(&codes), "case {case}");
        }
    });
}

#[test]
fn bespoke_svm_equals_model_on_random_datasets() {
    cases(0xB15_0003, 24, |case, rng| {
        let data = random_dataset(rng);
        let svm = SvmRegressor::fit(&data, 60, 1e-3);
        let fq = FeatureQuantizer::fit(&data, 6);
        let qs = QuantizedSvm::from_svm(&svm, &fq);
        let module = bespoke_svm(&qs);
        let mut sim = Simulator::new(&module);
        for row in data.x.iter().take(25) {
            let codes = fq.code_row(row);
            for &(f, _) in qs.pos_terms().iter().chain(qs.neg_terms()) {
                sim.set(&format!("x{f}"), codes[f]);
            }
            sim.settle();
            assert_eq!(sim.get("class") as usize, qs.predict(&codes), "case {case}");
        }
    });
}

#[test]
fn optimizer_preserves_function_of_random_circuits() {
    cases(0xB15_0004, 24, |case, rng| {
        let n_gates = rng.gen_range(4usize..40);
        let n_inputs = rng.gen_range(2usize..6);
        let original = random_circuit(rng, n_gates, n_inputs, 4);
        let optimized = optimize(&original);
        assert!(
            optimized.gate_count() <= original.gate_count(),
            "case {case}"
        );
        let mut s0 = Simulator::new(&original);
        let mut s1 = Simulator::new(&optimized);
        for v in 0..(1u64 << n_inputs) {
            s0.set("x", v);
            s1.set("x", v);
            s0.settle();
            s1.settle();
            assert_eq!(s0.get("o"), s1.get("o"), "case {case} input {v}");
        }
    });
}

/// The worklist optimizer must be equivalence-preserving on the module
/// family the flows actually feed it: raw bespoke tree and SVM netlists
/// for arbitrary trained models, checked with the lane-parallel miter
/// (`verify::check_equivalence`) rather than a hand-rolled simulation
/// loop. Seeds come from `exec`'s SplitMix64 task streams, so every case
/// reproduces from its printed index at any thread count.
#[test]
fn optimizer_is_equivalence_preserving_on_bespoke_models() {
    use printed_ml::core::bespoke::{bespoke_parallel_raw, bespoke_svm_raw};
    use printed_ml::netlist::{check_equivalence, Equivalence};
    cases(0xB15_000B, 10, |case, rng| {
        let data = random_dataset(rng);
        let raw = if case % 2 == 0 {
            let depth = rng.gen_range(1usize..=4);
            let bits = rng.gen_range(3usize..=6);
            let tree = DecisionTree::fit(&data, TreeParams::with_depth(depth));
            let fq = FeatureQuantizer::fit(&data, bits);
            bespoke_parallel_raw(&QuantizedTree::from_tree(&tree, &fq))
        } else {
            let svm = SvmRegressor::fit(&data, 60, 1e-3);
            let fq = FeatureQuantizer::fit(&data, 5);
            bespoke_svm_raw(&QuantizedSvm::from_svm(&svm, &fq))
        };
        let optimized = optimize(&raw);
        assert!(optimized.gate_count() <= raw.gate_count(), "case {case}");
        let verdict = check_equivalence(&raw, &optimized, 14, 512).expect("comparable ports");
        match verdict {
            Equivalence::Equivalent { vectors, .. } => {
                assert!(vectors > 0, "case {case}: no vectors tried")
            }
            Equivalence::CounterExample(v) => {
                panic!("case {case}: optimizer changed function at {v:?}")
            }
        }
    });
}

#[test]
fn quantizer_is_monotone_and_bounded() {
    cases(0xB15_0005, 24, |case, rng| {
        let n_values = rng.gen_range(10usize..40);
        let bits = rng.gen_range(2usize..=12);
        let values: Vec<f64> = (0..n_values).map(|_| rng.gen_range(-1e3f64..1e3)).collect();
        let rows: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
        let labels = vec![0usize; rows.len()];
        let data = Dataset::new("q", rows, labels, 1);
        let fq = FeatureQuantizer::fit(&data, bits);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let codes: Vec<u64> = sorted.iter().map(|&v| fq.code(0, v)).collect();
        for pair in codes.windows(2) {
            assert!(
                pair[0] <= pair[1],
                "case {case}: quantizer must be monotone"
            );
        }
        assert!(codes.iter().all(|&c| c <= fq.max_code()), "case {case}");
        // Extremes hit the rails.
        assert_eq!(codes[0], 0, "case {case}");
        assert_eq!(*codes.last().unwrap(), fq.max_code(), "case {case}");
    });
}

#[test]
fn const_multiplier_is_exact_for_any_coefficient() {
    cases(0xB15_0006, 40, |case, rng| {
        let k = rng.gen_range(0u64..1000);
        let x = rng.gen_range(0u64..256);
        let mut b = NetlistBuilder::new("cm");
        let xin = b.input("x", 8);
        let p = const_multiply(&mut b, &xin, k);
        b.output("p", &p);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        sim.set("x", x);
        sim.settle();
        let width = m.output("p").unwrap().width().min(63);
        let mask = (1u64 << width) - 1;
        assert_eq!(sim.get("p"), (x * k) & mask, "case {case}: k={k} x={x}");
    });
}

#[test]
fn batch_simulator_matches_scalar_on_random_circuits() {
    use printed_ml::netlist::BatchSimulator;
    cases(0xB15_0007, 16, |case, rng| {
        let n_gates = rng.gen_range(4usize..30);
        let n_inputs = rng.gen_range(2usize..6);
        let m = random_circuit(rng, n_gates, n_inputs, 3);
        let vectors: Vec<u64> = (0..(1u64 << n_inputs)).collect();
        let mut batch = BatchSimulator::new(&m);
        batch.set_lanes("x", &vectors);
        batch.settle();
        let got = batch.lanes("o", vectors.len());
        let mut scalar = Simulator::new(&m);
        for (lane, &v) in vectors.iter().enumerate() {
            scalar.set("x", v);
            scalar.settle();
            assert_eq!(got[lane], scalar.get("o"), "case {case} v={v}");
        }
    });
}

#[test]
fn batch_simulator_matches_scalar_at_every_lane_count() {
    // The verification engine packs 1..=64 vectors per settle; partial
    // words (lane counts below 64) must behave exactly like the scalar
    // simulator — bit 63 included (the sampled-mode mask bug regression).
    use printed_ml::netlist::BatchSimulator;
    cases(0xB15_000A, 4, |case, rng| {
        let n_gates = rng.gen_range(8usize..30);
        let n_inputs = rng.gen_range(2usize..6);
        let m = random_circuit(rng, n_gates, n_inputs, 3);
        let mut batch = BatchSimulator::new(&m);
        let mut scalar = Simulator::new(&m);
        for lanes in 1usize..=64 {
            let vectors: Vec<u64> = (0..lanes)
                .map(|_| rng.gen_range(0u64..(1u64 << n_inputs)))
                .collect();
            batch.set_lanes("x", &vectors);
            batch.settle();
            let got = batch.lanes("o", lanes);
            for (lane, &v) in vectors.iter().enumerate() {
                scalar.set("x", v);
                scalar.settle();
                assert_eq!(
                    got[lane],
                    scalar.get("o"),
                    "case {case} lanes={lanes} lane={lane} v={v}"
                );
            }
        }
    });
}

/// The boundary lane counts of the compiled wide kernel: a single lane,
/// one bit either side of every word boundary, and the full 256-lane
/// width of `WideSim<4>`. Each packing must agree bit-for-bit with the
/// scalar simulator.
#[test]
fn wide_sim_matches_scalar_at_boundary_lane_counts() {
    use printed_ml::netlist::{CompiledNetlist, WideSim};
    use std::sync::Arc;
    cases(0xB15_000C, 4, |case, rng| {
        let n_gates = rng.gen_range(8usize..30);
        let n_inputs = rng.gen_range(2usize..6);
        let m = random_circuit(rng, n_gates, n_inputs, 3);
        let mut wide: WideSim<4> = WideSim::new(Arc::new(CompiledNetlist::compile(&m)));
        let mut scalar = Simulator::new(&m);
        for lanes in [1usize, 63, 64, 65, 255, 256] {
            let vectors: Vec<Vec<u64>> = (0..lanes)
                .map(|_| vec![rng.gen_range(0u64..(1u64 << n_inputs))])
                .collect();
            let image = wide.pack_vectors(&vectors);
            wide.load_packed(&image);
            wide.settle();
            let got = wide.lanes("o", lanes);
            for (lane, v) in vectors.iter().enumerate() {
                scalar.set("x", v[0]);
                scalar.settle();
                assert_eq!(
                    got[lane],
                    scalar.get("o"),
                    "case {case} lanes={lanes} lane={lane} v={}",
                    v[0]
                );
            }
        }
    });
}

/// In-place fault injection in the compiled kernel must behave exactly
/// like structurally rewriting the netlist (`faults::inject`) and
/// simulating the mutated module scalar-style — at every boundary lane
/// count, for stuck-at-0 and stuck-at-1 sites alike.
#[test]
fn wide_sim_matches_scalar_under_injected_faults() {
    use printed_ml::netlist::faults::{fault_sites, inject};
    use printed_ml::netlist::{CompiledNetlist, WideSim};
    use std::sync::Arc;
    cases(0xB15_000D, 3, |case, rng| {
        let n_inputs = rng.gen_range(2usize..5);
        let n_gates = rng.gen_range(8usize..24);
        let m = random_circuit(rng, n_gates, n_inputs, 2);
        let mut wide: WideSim<4> = WideSim::new(Arc::new(CompiledNetlist::compile(&m)));
        let sites = fault_sites(&m);
        // Sample up to 8 sites; the kernel's own unit tests sweep all of
        // them on a fixed circuit, this property varies the circuit.
        let stride = sites.len().div_ceil(8).max(1);
        for fault in sites.iter().step_by(stride) {
            let faulty = inject(&m, *fault);
            let mut scalar = Simulator::new(&faulty);
            wide.inject_fault(fault.net, fault.stuck_at);
            for lanes in [1usize, 63, 64, 65, 255, 256] {
                let vectors: Vec<Vec<u64>> = (0..lanes)
                    .map(|_| vec![rng.gen_range(0u64..(1u64 << n_inputs))])
                    .collect();
                let image = wide.pack_vectors(&vectors);
                wide.load_packed(&image);
                wide.settle();
                let got = wide.lanes("o", lanes);
                for (lane, v) in vectors.iter().enumerate() {
                    scalar.set("x", v[0]);
                    scalar.settle();
                    assert_eq!(
                        got[lane],
                        scalar.get("o"),
                        "case {case} fault={fault:?} lanes={lanes} lane={lane}"
                    );
                }
            }
            wide.clear_fault();
        }
    });
}

/// The verification entry points shard their work over the pool but
/// share one compiled tape; the verdicts (and every counted vector) must
/// be identical at any worker count.
#[test]
fn verification_is_identical_at_1_4_and_8_threads() {
    use printed_ml::exec::with_threads;
    use printed_ml::netlist::{check_equivalence, fault_coverage};
    cases(0xB15_000E, 3, |case, rng| {
        let n_inputs = rng.gen_range(3usize..6);
        let n_gates = rng.gen_range(10usize..40);
        let m = random_circuit(rng, n_gates, n_inputs, 3);
        let optimized = optimize(&m);
        let vectors: Vec<Vec<u64>> = (0..96)
            .map(|_| vec![rng.gen_range(0u64..(1u64 << n_inputs))])
            .collect();
        let run = || {
            (
                check_equivalence(&m, &optimized, 10, 300).expect("comparable ports"),
                fault_coverage(&m, &vectors),
            )
        };
        let one = with_threads(1, run);
        let four = with_threads(4, run);
        let eight = with_threads(8, run);
        assert_eq!(one, four, "case {case}");
        assert_eq!(one, eight, "case {case}");
    });
}

#[test]
fn forest_hardware_matches_model_on_random_datasets() {
    use printed_ml::core::bespoke_forest;
    use printed_ml::ml::forest::{ForestParams, RandomForest};
    use printed_ml::ml::quant::QuantizedForest;
    cases(0xB15_0008, 16, |case, rng| {
        let data = random_dataset(rng);
        let forest = RandomForest::fit(
            &data,
            ForestParams {
                n_trees: 3,
                tree: TreeParams::with_depth(3),
                seed: 5,
            },
        );
        let fq = FeatureQuantizer::fit(&data, 5);
        let qf = QuantizedForest::from_forest(&forest, &fq);
        let module = bespoke_forest(&qf);
        let mut sim = Simulator::new(&module);
        for row in data.x.iter().take(20) {
            let codes = fq.code_row(row);
            for &f in &qf.used_features() {
                sim.set(&format!("f{f}"), codes[f]);
            }
            sim.settle();
            assert_eq!(sim.get("class") as usize, qf.predict(&codes), "case {case}");
        }
    });
}

#[test]
fn serial_tree_matches_parallel_tree_on_random_datasets() {
    use printed_ml::core::bespoke::bespoke_serial;
    cases(0xB15_0009, 16, |case, rng| {
        let data = random_dataset(rng);
        let depth = rng.gen_range(1usize..=3);
        let tree = DecisionTree::fit(&data, TreeParams::with_depth(depth));
        let fq = FeatureQuantizer::fit(&data, 4);
        let qt = QuantizedTree::from_tree(&tree, &fq);
        let parallel = bespoke_parallel(&qt);
        let (spec, serial) = bespoke_serial(&qt);
        let mut psim = Simulator::new(&parallel);
        let mut ssim = Simulator::new(&serial);
        let used = qt.used_features();
        for row in data.x.iter().take(20) {
            let codes = fq.code_row(row);
            for (slot, &f) in used.iter().enumerate() {
                psim.set(&format!("f{slot}"), codes[f]);
            }
            psim.settle();
            ssim.reset();
            for (slot, &f) in used.iter().enumerate() {
                ssim.set(&format!("f{slot}"), codes[f]);
            }
            for _ in 0..spec.depth {
                ssim.step();
            }
            ssim.settle();
            assert_eq!(psim.get("class"), ssim.get("class"), "case {case}");
        }
    });
}
