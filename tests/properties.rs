//! Property-based tests over the core invariants of the reproduction.
//!
//! * hardware/software equivalence holds for *arbitrary* trained models,
//!   not just the seven benchmark datasets;
//! * the logic optimizer never changes a circuit's function;
//! * quantization is monotone;
//! * constant multipliers agree with integer multiplication for any
//!   coefficient.

use proptest::prelude::*;

use printed_ml::core::bespoke::{bespoke_parallel, bespoke_svm};
use printed_ml::core::lookup::{lookup_parallel, LookupConfig};
use printed_ml::ml::quant::{FeatureQuantizer, QuantizedSvm, QuantizedTree};
use printed_ml::ml::tree::{DecisionTree, TreeParams};
use printed_ml::ml::{Dataset, SvmRegressor};
use printed_ml::netlist::arith::const_multiply;
use printed_ml::netlist::builder::NetlistBuilder;
use printed_ml::netlist::ir::Signal;
use printed_ml::netlist::{optimize, Simulator};
use printed_ml::pdk::CellKind;

/// Strategy: a small random labelled dataset (2-4 features, 2-4 classes).
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..=4, 2usize..=4, 20usize..=60, any::<u64>()).prop_map(
        |(n_features, n_classes, n_samples, seed)| {
            // Simple deterministic pseudo-random generator (no Date/rand
            // state shared with the library under test).
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let mut x = Vec::with_capacity(n_samples);
            let mut y = Vec::with_capacity(n_samples);
            for _ in 0..n_samples {
                let label = (next() * n_classes as f64) as usize % n_classes;
                let row: Vec<f64> = (0..n_features)
                    .map(|f| next() * 4.0 - 2.0 + (label as f64) * 0.4 * ((f % 2) as f64))
                    .collect();
                x.push(row);
                y.push(label);
            }
            Dataset::new("prop", x, y, n_classes)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bespoke_parallel_equals_model_on_random_datasets(
        data in dataset_strategy(),
        depth in 1usize..=4,
        bits in 3usize..=8,
    ) {
        let tree = DecisionTree::fit(&data, TreeParams::with_depth(depth));
        let fq = FeatureQuantizer::fit(&data, bits);
        let qt = QuantizedTree::from_tree(&tree, &fq);
        let module = bespoke_parallel(&qt);
        let mut sim = Simulator::new(&module);
        let used = qt.used_features();
        for row in data.x.iter().take(30) {
            let codes = fq.code_row(row);
            for (slot, &f) in used.iter().enumerate() {
                sim.set(&format!("f{slot}"), codes[f]);
            }
            sim.settle();
            prop_assert_eq!(sim.get("class") as usize, qt.predict(&codes));
        }
    }

    #[test]
    fn lookup_tree_equals_model_on_random_datasets(
        data in dataset_strategy(),
        depth in 1usize..=4,
    ) {
        let tree = DecisionTree::fit(&data, TreeParams::with_depth(depth));
        let fq = FeatureQuantizer::fit(&data, 4);
        let qt = QuantizedTree::from_tree(&tree, &fq);
        let module = lookup_parallel(&qt, LookupConfig::optimized());
        let mut sim = Simulator::new(&module);
        let used = qt.used_features();
        for row in data.x.iter().take(30) {
            let codes = fq.code_row(row);
            for (slot, &f) in used.iter().enumerate() {
                sim.set(&format!("f{slot}"), codes[f]);
            }
            sim.settle();
            prop_assert_eq!(sim.get("class") as usize, qt.predict(&codes));
        }
    }

    #[test]
    fn bespoke_svm_equals_model_on_random_datasets(data in dataset_strategy()) {
        let svm = SvmRegressor::fit(&data, 60, 1e-3);
        let fq = FeatureQuantizer::fit(&data, 6);
        let qs = QuantizedSvm::from_svm(&svm, &fq);
        let module = bespoke_svm(&qs);
        let mut sim = Simulator::new(&module);
        for row in data.x.iter().take(25) {
            let codes = fq.code_row(row);
            for &(f, _) in qs.pos_terms().iter().chain(qs.neg_terms()) {
                sim.set(&format!("x{f}"), codes[f]);
            }
            sim.settle();
            prop_assert_eq!(sim.get("class") as usize, qs.predict(&codes));
        }
    }

    #[test]
    fn optimizer_preserves_function_of_random_circuits(
        seed in any::<u64>(),
        n_gates in 4usize..40,
        n_inputs in 2usize..6,
    ) {
        // Build a random combinational DAG mixing constants and nets.
        let mut b = NetlistBuilder::new("random");
        let inputs = b.input("x", n_inputs);
        let mut pool: Vec<Signal> = inputs.clone();
        pool.push(Signal::ZERO);
        pool.push(Signal::ONE);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..n_gates {
            let kinds = [
                CellKind::Inv,
                CellKind::And2,
                CellKind::Or2,
                CellKind::Nand2,
                CellKind::Nor2,
                CellKind::Xor2,
                CellKind::Xnor2,
                CellKind::Mux2,
                CellKind::Buf,
            ];
            let kind = kinds[(next() % kinds.len() as u64) as usize];
            let pick = |n: &mut dyn FnMut() -> u64, pool: &[Signal]| {
                pool[(n() % pool.len() as u64) as usize]
            };
            let ins: Vec<Signal> =
                (0..kind.input_count()).map(|_| pick(&mut next, &pool)).collect();
            let out = b.gate(kind, &ins);
            pool.push(out);
        }
        // Observe the last few signals.
        let outs: Vec<Signal> = pool.iter().rev().take(4).copied().collect();
        b.output("o", &outs);
        let original = b.finish();
        let optimized = optimize(&original);
        prop_assert!(optimized.gate_count() <= original.gate_count());
        let mut s0 = Simulator::new(&original);
        let mut s1 = Simulator::new(&optimized);
        for v in 0..(1u64 << n_inputs) {
            s0.set("x", v);
            s1.set("x", v);
            s0.settle();
            s1.settle();
            prop_assert_eq!(s0.get("o"), s1.get("o"), "input {}", v);
        }
    }

    #[test]
    fn quantizer_is_monotone_and_bounded(
        values in proptest::collection::vec(-1e3f64..1e3, 10..40),
        bits in 2usize..=12,
    ) {
        let rows: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
        let labels = vec![0usize; rows.len()];
        let data = Dataset::new("q", rows, labels, 1);
        let fq = FeatureQuantizer::fit(&data, bits);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let codes: Vec<u64> = sorted.iter().map(|&v| fq.code(0, v)).collect();
        for pair in codes.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantizer must be monotone");
        }
        prop_assert!(codes.iter().all(|&c| c <= fq.max_code()));
        // Extremes hit the rails.
        prop_assert_eq!(codes[0], 0);
        prop_assert_eq!(*codes.last().unwrap(), fq.max_code());
    }

    #[test]
    fn const_multiplier_is_exact_for_any_coefficient(
        k in 0u64..1000,
        x in 0u64..256,
    ) {
        let mut b = NetlistBuilder::new("cm");
        let xin = b.input("x", 8);
        let p = const_multiply(&mut b, &xin, k);
        b.output("p", &p);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        sim.set("x", x);
        sim.settle();
        let width = m.output("p").unwrap().width().min(63);
        let mask = (1u64 << width) - 1;
        prop_assert_eq!(sim.get("p"), (x * k) & mask);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batch_simulator_matches_scalar_on_random_circuits(
        seed in any::<u64>(),
        n_gates in 4usize..30,
        n_inputs in 2usize..6,
    ) {
        use printed_ml::netlist::BatchSimulator;
        let mut b = NetlistBuilder::new("random");
        let inputs = b.input("x", n_inputs);
        let mut pool: Vec<Signal> = inputs.clone();
        pool.push(Signal::ZERO);
        pool.push(Signal::ONE);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..n_gates {
            let kinds = [
                CellKind::Inv,
                CellKind::And2,
                CellKind::Or2,
                CellKind::Nand2,
                CellKind::Nor2,
                CellKind::Xor2,
                CellKind::Xnor2,
                CellKind::Mux2,
                CellKind::Buf,
            ];
            let kind = kinds[(next() % kinds.len() as u64) as usize];
            let ins: Vec<Signal> = (0..kind.input_count())
                .map(|_| pool[(next() % pool.len() as u64) as usize])
                .collect();
            let out = b.gate(kind, &ins);
            pool.push(out);
        }
        let outs: Vec<Signal> = pool.iter().rev().take(3).copied().collect();
        b.output("o", &outs);
        let m = b.finish();
        let vectors: Vec<u64> = (0..(1u64 << n_inputs)).collect();
        let mut batch = BatchSimulator::new(&m);
        batch.set_lanes("x", &vectors);
        batch.settle();
        let got = batch.lanes("o", vectors.len());
        let mut scalar = Simulator::new(&m);
        for (lane, &v) in vectors.iter().enumerate() {
            scalar.set("x", v);
            scalar.settle();
            prop_assert_eq!(got[lane], scalar.get("o"), "v={}", v);
        }
    }

    #[test]
    fn forest_hardware_matches_model_on_random_datasets(data in dataset_strategy()) {
        use printed_ml::core::bespoke_forest;
        use printed_ml::ml::forest::{ForestParams, RandomForest};
        use printed_ml::ml::quant::QuantizedForest;
        let forest = RandomForest::fit(
            &data,
            ForestParams { n_trees: 3, tree: TreeParams::with_depth(3), seed: 5 },
        );
        let fq = FeatureQuantizer::fit(&data, 5);
        let qf = QuantizedForest::from_forest(&forest, &fq);
        let module = bespoke_forest(&qf);
        let mut sim = Simulator::new(&module);
        for row in data.x.iter().take(20) {
            let codes = fq.code_row(row);
            for &f in &qf.used_features() {
                sim.set(&format!("f{f}"), codes[f]);
            }
            sim.settle();
            prop_assert_eq!(sim.get("class") as usize, qf.predict(&codes));
        }
    }

    #[test]
    fn serial_tree_matches_parallel_tree_on_random_datasets(
        data in dataset_strategy(),
        depth in 1usize..=3,
    ) {
        use printed_ml::core::bespoke::bespoke_serial;
        let tree = DecisionTree::fit(&data, TreeParams::with_depth(depth));
        let fq = FeatureQuantizer::fit(&data, 4);
        let qt = QuantizedTree::from_tree(&tree, &fq);
        let parallel = bespoke_parallel(&qt);
        let (spec, serial) = bespoke_serial(&qt);
        let mut psim = Simulator::new(&parallel);
        let mut ssim = Simulator::new(&serial);
        let used = qt.used_features();
        for row in data.x.iter().take(20) {
            let codes = fq.code_row(row);
            for (slot, &f) in used.iter().enumerate() {
                psim.set(&format!("f{slot}"), codes[f]);
            }
            psim.settle();
            ssim.reset();
            for (slot, &f) in used.iter().enumerate() {
                ssim.set(&format!("f{slot}"), codes[f]);
            }
            for _ in 0..spec.depth {
                ssim.step();
            }
            ssim.settle();
            prop_assert_eq!(psim.get("class"), ssim.get("class"));
        }
    }
}
