//! Thread-count invariance of the parallel Monte Carlo and fault-sim
//! paths: the same root seed must produce bit-identical results whether
//! the work pool runs on one thread or many. Both sweeps draw their
//! randomness from per-task `exec::task_seed` streams keyed by trial /
//! site index, so sharding must never change what any task computes —
//! only who computes it.

use printed_ml::analog;
use printed_ml::exec::with_threads;
use printed_ml::ml::quant::{FeatureQuantizer, QuantizedTree};
use printed_ml::ml::synth::Application;
use printed_ml::ml::tree::{DecisionTree, TreeParams};
use printed_ml::netlist;

#[test]
fn variation_sweep_is_identical_at_any_thread_count() {
    let data = Application::Har.generate(7);
    let (train, test) = data.split(0.7, 42);
    let tree = DecisionTree::fit(&train, TreeParams::with_depth(4));
    let fq = FeatureQuantizer::fit(&train, 6);
    let qt = QuantizedTree::from_tree(&tree, &fq);
    let rows: Vec<Vec<u64>> = test.x.iter().take(60).map(|r| fq.code_row(r)).collect();
    let sweep = || analog::variation_sweep(&qt, &rows, &[0.05, 0.2], 8, 7);
    let serial = with_threads(1, sweep);
    let four = with_threads(4, sweep);
    let many = with_threads(16, sweep);
    assert_eq!(serial, four);
    assert_eq!(serial, many);
    // And the seed still matters: a different root seed moves the sweep.
    let other = with_threads(4, || {
        analog::variation_sweep(&qt, &rows, &[0.05, 0.2], 8, 8)
    });
    assert_ne!(serial, other);
}

#[test]
fn fault_coverage_is_identical_at_any_thread_count() {
    use printed_ml::core::flow::{TreeArch, TreeFlow};
    let flow = TreeFlow::new(Application::Cardio, 4, 7);
    let module = flow
        .module(TreeArch::BespokeParallel)
        .expect("digital tree");
    let used = flow.qt.used_features();
    let vectors: Vec<Vec<u64>> = flow
        .test
        .x
        .iter()
        .take(40)
        .map(|row| {
            let codes = flow.fq.code_row(row);
            used.iter().map(|&f| codes[f]).collect()
        })
        .collect();
    let run = || netlist::fault_coverage(&module, &vectors);
    let serial = with_threads(1, run);
    let four = with_threads(4, run);
    let many = with_threads(16, run);
    assert_eq!(serial, four);
    assert_eq!(serial, many);
    assert_eq!(serial.detected + serial.undetected.len(), serial.total);
}
