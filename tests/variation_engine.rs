//! Property tests for the compiled lane-batched variation engine
//! (`analog::compile`): every report must be **bit-identical** to the
//! preserved scalar oracle (`analog::variation::reference`) across
//! trial counts that straddle the 64-trial lane-block boundary and
//! across thread counts, for both the tree and SVM analyzers.

use printed_ml::analog::compile::{CompiledSvmVariation, CompiledTreeVariation};
use printed_ml::analog::variation::{self, reference};
use printed_ml::exec::with_threads;
use printed_ml::ml::data::Standardizer;
use printed_ml::ml::quant::{FeatureQuantizer, QuantizedSvm, QuantizedTree};
use printed_ml::ml::synth::Application;
use printed_ml::ml::tree::{DecisionTree, TreeParams};
use printed_ml::ml::SvmRegressor;

/// Trial counts straddling the lane-block boundary: a partial block, a
/// single full block, and a full block plus a one-lane remainder.
const TRIALS: [usize; 4] = [1, 5, 64, 65];
const THREADS: [usize; 3] = [1, 4, 8];

fn tree_workload(app: Application, depth: usize, bits: usize) -> (QuantizedTree, Vec<Vec<u64>>) {
    let data = app.generate(7);
    let (train, test) = data.split(0.7, 42);
    let tree = DecisionTree::fit(&train, TreeParams::with_depth(depth));
    let fq = FeatureQuantizer::fit(&train, bits);
    let qt = QuantizedTree::from_tree(&tree, &fq);
    let rows: Vec<Vec<u64>> = test.x.iter().take(50).map(|r| fq.code_row(r)).collect();
    (qt, rows)
}

fn svm_workload() -> (QuantizedSvm, Vec<Vec<u64>>) {
    let data = Application::RedWine.generate(7);
    let (train, test) = data.split(0.7, 42);
    let s = Standardizer::fit(&train);
    let (train, test) = (s.transform(&train), s.transform(&test));
    let svm = SvmRegressor::fit(&train, 150, 1e-4);
    let fq = FeatureQuantizer::fit(&train, 8);
    let qs = QuantizedSvm::from_svm(&svm, &fq);
    let rows: Vec<Vec<u64>> = test.x.iter().take(60).map(|r| fq.code_row(r)).collect();
    (qs, rows)
}

#[test]
fn compiled_tree_reports_are_bit_identical_to_reference() {
    let (qt, rows) = tree_workload(Application::Har, 4, 6);
    for sigma in [0.05, 0.3] {
        for trials in TRIALS {
            let oracle = reference::analyze_tree_variation(&qt, &rows, sigma, trials, 9);
            for threads in THREADS {
                let compiled = with_threads(threads, || {
                    variation::analyze_tree_variation(&qt, &rows, sigma, trials, 9)
                });
                assert_eq!(
                    compiled, oracle,
                    "tree sigma {sigma} trials {trials} threads {threads}"
                );
            }
        }
    }
}

#[test]
fn compiled_tree_matches_reference_on_a_deep_tree() {
    // Depth 8 pushes the split count past the dense-strategy limit, so
    // this exercises the sparse per-lane walk.
    let (qt, rows) = tree_workload(Application::Pendigits, 8, 6);
    let engine = CompiledTreeVariation::compile(&qt);
    assert!(
        engine.split_count() > 32,
        "want the sparse path, got {} splits",
        engine.split_count()
    );
    for trials in [5, 65] {
        let oracle = reference::analyze_tree_variation(&qt, &rows, 0.1, trials, 21);
        let compiled = engine.analyze_rows(&rows, 0.1, trials, 21);
        assert_eq!(compiled, oracle, "deep tree, trials {trials}");
    }
}

#[test]
fn compiled_svm_reports_are_bit_identical_to_reference() {
    let (qs, rows) = svm_workload();
    for sigma in [0.02, 0.3] {
        for trials in TRIALS {
            let oracle = reference::analyze_svm_variation(&qs, 11, &rows, sigma, trials, 5);
            for threads in THREADS {
                let compiled = with_threads(threads, || {
                    variation::analyze_svm_variation(&qs, 11, &rows, sigma, trials, 5)
                });
                assert_eq!(
                    compiled, oracle,
                    "svm sigma {sigma} trials {trials} threads {threads}"
                );
            }
        }
    }
}

#[test]
fn zero_sigma_agreement_is_perfect_in_both_engines() {
    let (qt, rows) = tree_workload(Application::Har, 4, 6);
    let oracle = reference::analyze_tree_variation(&qt, &rows, 0.0, 65, 3);
    let compiled = variation::analyze_tree_variation(&qt, &rows, 0.0, 65, 3);
    assert_eq!(compiled, oracle);
    assert_eq!(compiled.mean_agreement, 1.0);
    assert_eq!(compiled.worst_agreement, 1.0);

    let (qs, svm_rows) = svm_workload();
    let oracle = reference::analyze_svm_variation(&qs, 11, &svm_rows, 0.0, 65, 3);
    let compiled = variation::analyze_svm_variation(&qs, 11, &svm_rows, 0.0, 65, 3);
    assert_eq!(compiled, oracle);
    assert_eq!(compiled.mean_agreement, 1.0);
    assert_eq!(compiled.worst_agreement, 1.0);
}

#[test]
fn bound_rows_are_reusable_across_sigmas_and_seeds() {
    let (qs, rows) = svm_workload();
    let engine = CompiledSvmVariation::compile(&qs, 11);
    let bound = engine.bind(&rows);
    assert_eq!(bound.len(), rows.len());
    for (sigma, seed) in [(0.05, 1u64), (0.2, 9)] {
        assert_eq!(
            engine.analyze(&bound, sigma, 10, seed),
            reference::analyze_svm_variation(&qs, 11, &rows, sigma, 10, seed),
            "sigma {sigma} seed {seed}"
        );
    }
}
