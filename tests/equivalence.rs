//! Cross-architecture logic equivalence: bespoke and lookup-based trees
//! generated from the same model must be *provably* the same function —
//! checked with a miter, exhaustively where the input space allows.

use printed_ml::core::bespoke::{bespoke_parallel, bespoke_parallel_raw};
use printed_ml::core::lookup::{lookup_parallel, LookupConfig};
use printed_ml::ml::quant::{FeatureQuantizer, QuantizedTree};
use printed_ml::ml::synth::Application;
use printed_ml::ml::tree::{DecisionTree, TreeParams};
use printed_ml::netlist::{check_equivalence, optimize, Equivalence};

fn small_tree(app: Application, depth: usize, bits: usize) -> QuantizedTree {
    let data = app.generate(7);
    let (train, _) = data.split(0.7, 42);
    let tree = DecisionTree::fit(&train, TreeParams::with_depth(depth));
    let fq = FeatureQuantizer::fit(&train, bits);
    QuantizedTree::from_tree(&tree, &fq)
}

#[test]
fn bespoke_and_lookup_trees_are_logically_equivalent() {
    for app in [Application::Har, Application::Cardio, Application::RedWine] {
        let qt = small_tree(app, 3, 4);
        let bespoke = bespoke_parallel(&qt);
        for config in [LookupConfig::baseline(), LookupConfig::optimized()] {
            let lookup = lookup_parallel(&qt, config);
            // Port shapes match by construction (same used-feature slots).
            let total_bits: usize = bespoke.inputs.iter().map(|p| p.width()).sum();
            let verdict = check_equivalence(&bespoke, &lookup, 18, 3000).expect("port shapes");
            match verdict {
                Equivalence::Equivalent {
                    exhaustive,
                    vectors,
                } => {
                    if total_bits <= 18 {
                        assert!(exhaustive, "{}: expected a full proof", app.name());
                    }
                    assert!(vectors > 0);
                }
                Equivalence::CounterExample(v) => {
                    panic!("{}: architectures diverge at {v:?}", app.name())
                }
            }
        }
    }
}

#[test]
fn optimization_is_equivalence_preserving_on_real_designs() {
    let qt = small_tree(Application::Pendigits, 4, 4);
    // The raw generator output is the genuine unoptimized reference; the
    // optimized netlist must prove equivalent to it...
    let raw = bespoke_parallel_raw(&qt);
    let once = bespoke_parallel(&qt);
    let verdict = check_equivalence(&raw, &once, 20, 5000).expect("port shapes");
    assert!(verdict.is_equivalent(), "{verdict:?}");
    // ...and optimize() is idempotent, so double-optimization must too.
    let twice = optimize(&once);
    let verdict = check_equivalence(&once, &twice, 20, 5000).expect("port shapes");
    assert!(verdict.is_equivalent(), "{verdict:?}");
    assert_eq!(
        once.gate_count(),
        twice.gate_count(),
        "optimize must be idempotent"
    );
}

#[test]
fn counterexamples_surface_real_divergence() {
    // Two different trees are (almost surely) different functions; the
    // checker must find a witness.
    let a = bespoke_parallel(&small_tree(Application::Har, 2, 4));
    let b = bespoke_parallel(&small_tree(Application::Har, 4, 4));
    if a.inputs.len() == b.inputs.len()
        && a.outputs
            .iter()
            .zip(&b.outputs)
            .all(|(x, y)| x.width() == y.width())
        && a.inputs
            .iter()
            .zip(&b.inputs)
            .all(|(x, y)| x.width() == y.width())
    {
        let verdict = check_equivalence(&a, &b, 16, 4000).expect("port shapes");
        assert!(
            !verdict.is_equivalent(),
            "depth-2 and depth-4 HAR trees should differ somewhere"
        );
    }
}
