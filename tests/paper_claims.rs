//! The paper's headline quantitative claims, asserted as bands.
//!
//! Absolute numbers cannot match (our substrate is a calibrated simulator,
//! not the authors' PDK + Synopsys flow), but the *shape* must hold: who
//! wins, by roughly what factor, and where the crossovers fall. Each test
//! names the paper statement it guards.

use printed_ml::analog::AnalogTreeConfig;
use printed_ml::core::flow::{SvmArch, SvmFlow, TreeArch, TreeFlow};
use printed_ml::core::report::Improvement;
use printed_ml::core::LookupConfig;
use printed_ml::ml::synth::Application;
use printed_ml::pdk::Technology;

fn mean_tree_improvement(depths: &[usize], arch: TreeArch, baseline: TreeArch) -> Improvement {
    let mut imps = Vec::new();
    for &depth in depths {
        for app in [
            Application::Cardio,
            Application::Pendigits,
            Application::RedWine,
        ] {
            let flow = TreeFlow::new(app, depth, 7);
            let b = flow.report(baseline, Technology::Egt);
            let t = flow.report(arch, Technology::Egt);
            if t.area.as_mm2() > 0.0 {
                imps.push(t.improvement_over(&b));
            }
        }
    }
    Improvement::mean(&imps)
}

#[test]
fn claim_mac_is_several_times_a_comparator_in_egt() {
    // §III: "an EGT MAC requires 7.5x more area, 6.8x more power, and has
    // 2.4x higher latency relative to a comparison."
    let t1 = bench::experiments::table1();
    // Parse our own Table I output: EGT comparator row and MAC row.
    let rows = &t1[0].rows;
    let get = |component: &str, col: usize| -> f64 {
        let row = rows
            .iter()
            .find(|r| r[0] == component && r[1] == "EGT")
            .unwrap_or_else(|| panic!("row {component}"));
        row[col].split_whitespace().next().unwrap().parse().unwrap()
    };
    let area_ratio = get("MAC", 3) / get("Comparator", 3);
    let power_ratio = get("MAC", 4) / get("Comparator", 4);
    let delay_ratio = get("MAC", 2) / get("Comparator", 2);
    assert!(area_ratio > 4.0 && area_ratio < 20.0, "area {area_ratio}");
    assert!(
        power_ratio > 4.0 && power_ratio < 20.0,
        "power {power_ratio}"
    );
    assert!(
        delay_ratio > 1.5 && delay_ratio < 6.0,
        "delay {delay_ratio}"
    );
}

#[test]
fn claim_bespoke_parallel_wins_by_tens_of_x() {
    // Abstract: "bespoke implementation of EGT printed Decision Trees has
    // 48.9x lower area (average) and 75.6x lower power (average)".
    let m = mean_tree_improvement(
        &[2, 4, 8],
        TreeArch::BespokeParallel,
        TreeArch::ConventionalParallel,
    );
    assert!(m.area > 10.0 && m.area < 200.0, "area {}", m.area);
    assert!(m.power > 15.0 && m.power < 300.0, "power {}", m.power);
    assert!(m.delay > 1.0, "delay {}", m.delay);
}

#[test]
fn claim_bespoke_serial_improves_modestly() {
    // §IV-A: bespoke serial trees improve ~1.2% latency, 37% area, 22%
    // power — i.e. small-but-real, nothing like the parallel case.
    let m = mean_tree_improvement(
        &[2, 4],
        TreeArch::BespokeSerial,
        TreeArch::ConventionalSerial,
    );
    assert!(m.area > 1.05 && m.area < 4.0, "area {}", m.area);
    assert!(m.power > 1.05 && m.power < 4.0, "power {}", m.power);
}

#[test]
fn claim_parallel_bespoke_strictly_beats_serial_bespoke() {
    // §IV-A: "unlike conventional counterparts, parallel bespoke trees are
    // strictly better than serial bespoke trees."
    for app in [Application::Cardio, Application::Pendigits] {
        let flow = TreeFlow::new(app, 4, 7);
        let par = flow.report(TreeArch::BespokeParallel, Technology::Egt);
        let ser = flow.report(TreeArch::BespokeSerial, Technology::Egt);
        assert!(par.area < ser.area, "{}", app.name());
        assert!(par.power < ser.power, "{}", app.name());
        assert!(par.latency < ser.latency, "{}", app.name());
    }
}

#[test]
fn claim_lookup_helps_deep_trees_only() {
    // §V-A: "in many cases, especially with shallow trees, there is not
    // enough input feature reuse for lookup tables to be useful. But, in
    // the best case, we see 13%, 38%, and 70% improvements."
    let deep = mean_tree_improvement(
        &[8],
        TreeArch::Lookup(LookupConfig::optimized()),
        TreeArch::BespokeParallel,
    );
    let shallow = mean_tree_improvement(
        &[1],
        TreeArch::Lookup(LookupConfig::optimized()),
        TreeArch::BespokeParallel,
    );
    assert!(
        deep.area > shallow.area,
        "deep {} vs shallow {}",
        deep.area,
        shallow.area
    );
    assert!(
        shallow.area < 1.0,
        "shallow lookup must lose: {}",
        shallow.area
    );
}

#[test]
fn claim_lookup_optimizations_add_area_and_power() {
    // §V-A / Fig. 10: constant-column elimination + dot ROMs increase the
    // area benefit over plain lookup.
    let base = mean_tree_improvement(
        &[8],
        TreeArch::Lookup(LookupConfig::baseline()),
        TreeArch::BespokeParallel,
    );
    let opt = mean_tree_improvement(
        &[8],
        TreeArch::Lookup(LookupConfig::optimized()),
        TreeArch::BespokeParallel,
    );
    assert!(opt.area > base.area, "opt {} base {}", opt.area, base.area);
    assert!(
        opt.power >= base.power,
        "opt {} base {}",
        opt.power,
        base.power
    );
}

#[test]
fn claim_bespoke_svm_wins_by_around_10x() {
    // Abstract: "corresponding benefits for bespoke SVMs are 12.8x and
    // 12.7x" (vs per-dataset conventional engines).
    let mut imps = Vec::new();
    for app in [Application::RedWine, Application::Cardio] {
        let flow = SvmFlow::new(app, 7);
        let conv = flow.report(SvmArch::Conventional, Technology::Egt);
        let besp = flow.report(SvmArch::Bespoke, Technology::Egt);
        imps.push(besp.improvement_over(&conv));
    }
    let m = Improvement::mean(&imps);
    assert!(m.area > 2.0 && m.area < 60.0, "area {}", m.area);
    assert!(m.power > 2.0 && m.power < 60.0, "power {}", m.power);
    assert!(m.delay > 1.0, "delay {}", m.delay);
}

#[test]
fn claim_analog_trees_win_hundreds_of_x_in_area() {
    // Abstract: "Analog printed Decision Trees provide 437x area and 27x
    // power benefits over digital bespoke counterparts" and are ~1.6x
    // slower.
    let m = mean_tree_improvement(
        &[4, 8],
        TreeArch::Analog(AnalogTreeConfig::default()),
        TreeArch::BespokeParallel,
    );
    assert!(m.area > 100.0, "area {}", m.area);
    assert!(m.power > 8.0 && m.power < 120.0, "power {}", m.power);
    assert!(m.delay < 1.0, "analog must be slower: {}", m.delay);
}

#[test]
fn claim_analog_svms_win_hundreds_of_x_in_area() {
    // Abstract: "analog SVMs yield 490x area and 12x power improvements"
    // and are ~1.36x slower.
    let mut imps = Vec::new();
    for app in [Application::RedWine, Application::Cardio, Application::Har] {
        let flow = SvmFlow::new(app, 7);
        let besp = flow.report(SvmArch::Bespoke, Technology::Egt);
        let ana = flow.report(SvmArch::Analog, Technology::Egt);
        imps.push(ana.improvement_over(&besp));
    }
    let m = Improvement::mean(&imps);
    assert!(m.area > 100.0, "area {}", m.area);
    assert!(m.power > 5.0, "power {}", m.power);
    assert!(
        m.delay < 1.2,
        "analog should not be much faster: {}",
        m.delay
    );
}

#[test]
fn claim_conventional_designs_exceed_printed_power_sources() {
    // Fig. 3: deep conventional EGT trees cannot be powered by any printed
    // source; Fig. 19: bespoke/analog designs mostly can.
    let flow = TreeFlow::new(Application::Pendigits, 8, 7);
    let conv = flow.report(TreeArch::ConventionalParallel, Technology::Egt);
    assert!(!conv.feasibility().is_powerable(), "{}", conv.power);
    let analog = flow.report(
        TreeArch::Analog(AnalogTreeConfig::default()),
        Technology::Egt,
    );
    assert!(analog.feasibility().is_powerable(), "{}", analog.power);
}

#[test]
fn claim_silicon_always_wins_ppa() {
    // §VII: "it is unlikely that there exist system design points such
    // that an EGT-based system outperforms a silicon CMOS system in terms
    // of power, performance, or area."
    let flow = TreeFlow::new(Application::Cardio, 4, 7);
    for arch in [TreeArch::BespokeParallel, TreeArch::ConventionalSerial] {
        let egt = flow.report(arch, Technology::Egt);
        let si = flow.report(arch, Technology::Tsmc40);
        assert!(egt.area.ratio(si.area) > 100.0);
        assert!(egt.latency.ratio(si.latency) > 1000.0);
        assert!(egt.power > si.power);
    }
}
